"""Experiment runners: one function per table/figure of the paper.

Every runner takes an :class:`~repro.evaluation.settings.ExperimentSettings`
and returns a plain-data result object that the formatting helpers in
:mod:`repro.evaluation.tables` and :mod:`repro.evaluation.figures` render as
text.  The benchmark modules under ``benchmarks/`` call these runners, so the
same code regenerates the paper's evaluation from the command line or CI.

Paper → runner map (see DESIGN.md for the full index):

========  ==============================  ==========================
Artefact  Content                          Runner
========  ==============================  ==========================
Table 2   model × loss comparison          :func:`run_table2`
Table 3   breakdown by symbol kind         :func:`run_table3`
Table 4   graph/initialiser ablations      :func:`run_table4`
Table 5   correctness modulo type checker  :func:`run_table5`
Fig. 4    precision-recall curves          :func:`run_figure4`
Fig. 5    accuracy vs annotation count     :func:`run_figure5`
Fig. 6    kNN parameter sweep              :func:`run_figure6`
Fig. 7    checker-correctness PR curve     :func:`run_figure7`
Sec. 6    corpus statistics                :func:`run_corpus_stats`
Sec. 6.1  GNN vs biRNN speed               :func:`run_speed_comparison`
========  ==============================  ==========================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.checker.checker import CheckerMode
from repro.checker.harness import PredictionCategory, PredictionChecker
from repro.core.losses import ClassificationHead
from repro.core.metrics import (
    EvaluatedPrediction,
    FrequencyBucket,
    MetricSummary,
    PrecisionRecallPoint,
    bucketed_by_frequency,
    evaluate_prediction,
    precision_recall_curve,
    summarise,
    summarise_by_kind,
    summarise_by_rarity,
)
from repro.core.predictor import KNNTypePredictor
from repro.core.trainer import LossKind, Trainer, TrainingResult
from repro.core.typespace import TypeSpace
from repro.core.pipeline import build_encoder
from repro.corpus.dataset import AnnotatedSymbol, TypeAnnotationDataset
from repro.evaluation.settings import ExperimentSettings
from repro.graph.edges import DATAFLOW_USE_EDGES, SYNTACTIC_EDGES, EdgeKind
from repro.graph.nodes import SymbolKind
from repro.utils.timing import Stopwatch


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------


def build_dataset(settings: ExperimentSettings) -> TypeAnnotationDataset:
    """Generate the synthetic corpus and assemble the dataset for a run."""
    return TypeAnnotationDataset.synthetic(settings.synthesis, settings.dataset)


@dataclass
class VariantResult:
    """One trained model/loss combination evaluated on the test split."""

    label: str
    family: str
    loss: LossKind
    evaluated: list[EvaluatedPrediction]
    breakdown: dict[str, MetricSummary]
    training_seconds: float
    training_result: Optional[TrainingResult] = None
    type_space: Optional[TypeSpace] = None
    test_embeddings: Optional[np.ndarray] = None
    test_samples: list[AnnotatedSymbol] = field(default_factory=list)


def _evaluate_with_knn(
    dataset: TypeAnnotationDataset,
    embeddings: np.ndarray,
    samples: Sequence[AnnotatedSymbol],
    space: TypeSpace,
    k: int,
    p: float,
) -> list[EvaluatedPrediction]:
    predictor = KNNTypePredictor(space, k=k, p=p)
    evaluated = []
    for sample, embedding in zip(samples, embeddings):
        prediction = predictor.predict(embedding)
        evaluated.append(
            evaluate_prediction(
                prediction.top_type, sample.annotation, prediction.confidence, dataset.lattice, kind=sample.kind
            )
        )
    return evaluated


def _evaluate_with_classifier(
    dataset: TypeAnnotationDataset,
    embeddings: np.ndarray,
    samples: Sequence[AnnotatedSymbol],
    head: ClassificationHead,
) -> list[EvaluatedPrediction]:
    from repro.nn.tensor import Tensor

    predictions = head.predict(Tensor(embeddings))
    evaluated = []
    for sample, (predicted, confidence) in zip(samples, predictions):
        predicted_type = None if predicted == "%UNK%" else predicted
        evaluated.append(
            evaluate_prediction(predicted_type, sample.annotation, confidence, dataset.lattice, kind=sample.kind)
        )
    return evaluated


def train_variant(
    dataset: TypeAnnotationDataset,
    settings: ExperimentSettings,
    family: str,
    loss: LossKind,
    label: Optional[str] = None,
    encoder_overrides: Optional[dict] = None,
) -> VariantResult:
    """Train one model family under one loss and evaluate it on the test split."""
    encoder_config = replace(settings.encoder, family=family, **(encoder_overrides or {}))
    encoder = build_encoder(dataset, encoder_config)
    trainer = Trainer(encoder, dataset, loss_kind=loss, config=settings.training)

    start = time.perf_counter()
    training_result = trainer.train()
    training_seconds = time.perf_counter() - start

    test_embeddings, test_samples = trainer.embed_split(dataset.test)
    space: Optional[TypeSpace] = None
    if loss == LossKind.CLASSIFICATION:
        assert training_result.classification_head is not None
        evaluated = _evaluate_with_classifier(dataset, test_embeddings, test_samples, training_result.classification_head)
    else:
        space = trainer.build_type_space()
        evaluated = _evaluate_with_knn(dataset, test_embeddings, test_samples, space, settings.knn_k, settings.knn_p)

    return VariantResult(
        label=label or f"{family}-{loss.value}",
        family=family,
        loss=loss,
        evaluated=evaluated,
        breakdown=summarise_by_rarity(evaluated, dataset.registry),
        training_seconds=training_seconds,
        training_result=training_result,
        type_space=space,
        test_embeddings=test_embeddings,
        test_samples=list(test_samples),
    )


# ---------------------------------------------------------------------------
# Table 2 — model × loss comparison
# ---------------------------------------------------------------------------

_TABLE2_LABELS = {
    ("sequence", LossKind.CLASSIFICATION): "Seq2Class",
    ("sequence", LossKind.SPACE): "Seq2Space",
    ("sequence", LossKind.TYPILUS): "Seq-Typilus",
    ("path", LossKind.CLASSIFICATION): "Path2Class",
    ("path", LossKind.SPACE): "Path2Space",
    ("path", LossKind.TYPILUS): "Path-Typilus",
    ("graph", LossKind.CLASSIFICATION): "Graph2Class",
    ("graph", LossKind.SPACE): "Graph2Space",
    ("graph", LossKind.TYPILUS): "Typilus",
}


@dataclass
class Table2Result:
    """All rows of Table 2 plus the dataset they were computed on."""

    rows: list[VariantResult]
    dataset_summary: dict[str, object]

    def row(self, label: str) -> VariantResult:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def run_table2(
    settings: ExperimentSettings,
    families: Sequence[str] = ("sequence", "path", "graph"),
    losses: Sequence[LossKind] = (LossKind.CLASSIFICATION, LossKind.SPACE, LossKind.TYPILUS),
    dataset: Optional[TypeAnnotationDataset] = None,
) -> Table2Result:
    """Reproduce Table 2: {Seq,Path,Graph} × {Class,Space,Typilus}."""
    dataset = dataset or build_dataset(settings)
    rows = []
    for family in families:
        for loss in losses:
            label = _TABLE2_LABELS.get((family, loss), f"{family}-{loss.value}")
            rows.append(train_variant(dataset, settings, family, loss, label=label))
    return Table2Result(rows=rows, dataset_summary=dataset.summary())


# ---------------------------------------------------------------------------
# Table 3 — breakdown by symbol kind
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    by_kind: dict[str, MetricSummary]
    proportions: dict[str, float]


def run_table3(settings: ExperimentSettings, variant: Optional[VariantResult] = None,
               dataset: Optional[TypeAnnotationDataset] = None) -> Table3Result:
    """Reproduce Table 3: Typilus performance per symbol kind."""
    dataset = dataset or build_dataset(settings)
    if variant is None:
        variant = train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")
    by_kind = summarise_by_kind(variant.evaluated)
    total = max(len(variant.evaluated), 1)
    proportions = {
        kind.value: sum(1 for p in variant.evaluated if p.kind == kind) / total for kind in SymbolKind
    }
    return Table3Result(by_kind=by_kind, proportions=proportions)


# ---------------------------------------------------------------------------
# Table 4 — ablations
# ---------------------------------------------------------------------------


@dataclass
class AblationRow:
    label: str
    exact_match: float
    type_neutral: float


@dataclass
class Table4Result:
    rows: list[AblationRow]


def _edge_subset(excluded: set[EdgeKind]) -> list[EdgeKind]:
    return [kind for kind in EdgeKind if kind not in excluded]


def run_table4(settings: ExperimentSettings, dataset: Optional[TypeAnnotationDataset] = None) -> Table4Result:
    """Reproduce Table 4: edge-ablation and node-initialiser variants."""
    dataset = dataset or build_dataset(settings)
    configurations: list[tuple[str, str, dict]] = [
        ("Only Names (No GNN)", "names", {}),
        ("No Syntactic Edges", "graph", {"edge_kinds": _edge_subset(set(SYNTACTIC_EDGES))}),
        ("No NEXT_TOKEN", "graph", {"edge_kinds": _edge_subset({EdgeKind.NEXT_TOKEN})}),
        ("No CHILD", "graph", {"edge_kinds": _edge_subset({EdgeKind.CHILD})}),
        ("No NEXT_*USE", "graph", {"edge_kinds": _edge_subset(set(DATAFLOW_USE_EDGES))}),
        ("Full Model - Tokens", "graph", {"node_init": "token"}),
        ("Full Model - Character", "graph", {"node_init": "character"}),
        ("Full Model - Subtokens", "graph", {}),
    ]
    rows = []
    for label, family, overrides in configurations:
        variant = train_variant(dataset, settings, family, LossKind.TYPILUS, label=label, encoder_overrides=overrides)
        summary = variant.breakdown["all"]
        rows.append(
            AblationRow(
                label=label,
                exact_match=summary.exact_match,
                type_neutral=summary.type_neutral,
            )
        )
    return Table4Result(rows=rows)


# ---------------------------------------------------------------------------
# Table 5 — correctness modulo the optional type checker
# ---------------------------------------------------------------------------


@dataclass
class Table5Cell:
    category: PredictionCategory
    proportion: float
    accuracy: float
    checked: int


@dataclass
class Table5Result:
    by_mode: dict[str, list[Table5Cell]]
    overall_accuracy: dict[str, float]
    total_checked: dict[str, int]


def run_table5(
    settings: ExperimentSettings,
    dataset: Optional[TypeAnnotationDataset] = None,
    variant: Optional[VariantResult] = None,
    modes: Sequence[CheckerMode] = (CheckerMode.STRICT, CheckerMode.LENIENT),
    max_predictions_per_mode: int = 150,
) -> Table5Result:
    """Reproduce Table 5: insert top predictions one at a time and type check.

    The strict mode plays the role of mypy, the lenient mode that of pytype.
    ``ϵ → τ`` rows come from predicting types for *unannotated* symbols of the
    test files; ``τ → τ'`` / ``τ → τ`` come from replacing existing test
    annotations with the model's top prediction.
    """
    dataset = dataset or build_dataset(settings)
    if variant is None:
        variant = train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")
    assert variant.type_space is not None
    predictor = KNNTypePredictor(variant.type_space, k=settings.knn_k, p=settings.knn_p)

    # Collect prediction requests: annotated test symbols (τ → ...) plus
    # unannotated symbols of the same graphs (ϵ → τ).
    encoder = variant.training_result.encoder if variant.training_result else None
    requests: list[tuple[str, AnnotatedSymbol | None, object, np.ndarray]] = []
    for sample, embedding in zip(variant.test_samples, variant.test_embeddings):
        requests.append(("annotated", sample, None, embedding))

    if encoder is not None:
        for graph_index, graph in enumerate(dataset.test.graphs):
            unannotated = [s for s in graph.symbols if s.annotation is None]
            if not unannotated:
                continue
            embeddings = encoder.encode([graph], [[s.node_index for s in unannotated]])
            for symbol, embedding in zip(unannotated, embeddings.data):
                requests.append(("unannotated", None, (graph_index, symbol), embedding))

    # Deterministically shuffle so the per-mode cap samples all three
    # categories in proportion to their true frequency (the paper's ϵ→τ row
    # dominates because most symbols are unannotated).
    from repro.utils.rng import SeededRNG

    requests = SeededRNG(settings.seed).shuffle(requests)

    by_mode: dict[str, list[Table5Cell]] = {}
    overall: dict[str, float] = {}
    totals: dict[str, int] = {}
    for mode in modes:
        checker = PredictionChecker(mode=mode)
        outcomes: list = []
        for request_kind, sample, symbol_ref, embedding in requests[:max_predictions_per_mode]:
            prediction = predictor.predict(embedding)
            if prediction.top_type is None or prediction.top_type == "Any":
                continue
            if request_kind == "annotated":
                assert sample is not None
                graph = dataset.test.graphs[sample.graph_index]
                source = dataset.sources.get(graph.filename, graph.source)
                outcome = checker.check_prediction(
                    source, sample.scope, sample.name, sample.kind, prediction.top_type,
                    original_annotation=sample.annotation,
                )
            else:
                graph_index, symbol = symbol_ref
                graph = dataset.test.graphs[graph_index]
                source = dataset.sources.get(graph.filename, graph.source)
                outcome = checker.check_prediction(
                    source, symbol.scope, symbol.name, symbol.kind, prediction.top_type, original_annotation=None
                )
            if not outcome.skipped:
                outcomes.append(outcome)

        cells: list[Table5Cell] = []
        total = max(len(outcomes), 1)
        for category in PredictionCategory:
            in_category = [o for o in outcomes if o.category == category]
            accuracy = sum(o.ok for o in in_category) / len(in_category) if in_category else 0.0
            cells.append(
                Table5Cell(
                    category=category,
                    proportion=len(in_category) / total,
                    accuracy=accuracy,
                    checked=len(in_category),
                )
            )
        by_mode[mode.value] = cells
        overall[mode.value] = sum(o.ok for o in outcomes) / total if outcomes else 0.0
        totals[mode.value] = len(outcomes)
    return Table5Result(by_mode=by_mode, overall_accuracy=overall, total_checked=totals)


# ---------------------------------------------------------------------------
# Figure 4 — precision/recall curves per model
# ---------------------------------------------------------------------------


@dataclass
class Figure4Result:
    curves: dict[str, list[PrecisionRecallPoint]]


def run_figure4(
    settings: ExperimentSettings,
    dataset: Optional[TypeAnnotationDataset] = None,
    variants: Optional[Sequence[VariantResult]] = None,
) -> Figure4Result:
    """Reproduce Fig. 4: PR curves for Graph2Class, Graph2Space and Typilus."""
    dataset = dataset or build_dataset(settings)
    if variants is None:
        variants = [
            train_variant(dataset, settings, "graph", LossKind.CLASSIFICATION, label="Graph2Class"),
            train_variant(dataset, settings, "graph", LossKind.SPACE, label="Graph2Space"),
            train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus"),
        ]
    return Figure4Result(curves={variant.label: precision_recall_curve(variant.evaluated) for variant in variants})


# ---------------------------------------------------------------------------
# Figure 5 — accuracy bucketed by annotation count
# ---------------------------------------------------------------------------


@dataclass
class Figure5Result:
    buckets: list[FrequencyBucket]


def run_figure5(
    settings: ExperimentSettings,
    dataset: Optional[TypeAnnotationDataset] = None,
    variant: Optional[VariantResult] = None,
) -> Figure5Result:
    dataset = dataset or build_dataset(settings)
    if variant is None:
        variant = train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")
    return Figure5Result(buckets=bucketed_by_frequency(variant.evaluated, dataset.registry))


# ---------------------------------------------------------------------------
# Figure 6 — kNN parameter sweep
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    k_values: list[int]
    p_values: list[float]
    #: match-up-to-parametric (%) for each (k, p) pair
    scores: np.ndarray
    #: difference with respect to the median score, as plotted in the paper
    deltas: np.ndarray


DEFAULT_K_VALUES = (1, 2, 3, 4, 5, 7, 9, 11, 13, 16, 19, 25)
DEFAULT_P_VALUES = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0)


def run_figure6(
    settings: ExperimentSettings,
    dataset: Optional[TypeAnnotationDataset] = None,
    variant: Optional[VariantResult] = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    p_values: Sequence[float] = DEFAULT_P_VALUES,
) -> Figure6Result:
    """Reproduce Fig. 6: sweep k and p of Eq. 5 on a fixed TypeSpace."""
    dataset = dataset or build_dataset(settings)
    if variant is None:
        variant = train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")
    assert variant.type_space is not None and variant.test_embeddings is not None

    scores = np.zeros((len(k_values), len(p_values)))
    for i, k in enumerate(k_values):
        for j, p in enumerate(p_values):
            evaluated = _evaluate_with_knn(
                dataset, variant.test_embeddings, variant.test_samples, variant.type_space, k, p
            )
            summary = summarise(evaluated)
            scores[i, j] = 100.0 * summary.match_up_to_parametric
    deltas = scores - np.median(scores)
    return Figure6Result(k_values=list(k_values), p_values=list(p_values), scores=scores, deltas=deltas)


# ---------------------------------------------------------------------------
# Figure 7 — PR curve of checker correctness
# ---------------------------------------------------------------------------


@dataclass
class Figure7Point:
    threshold: float
    recall: float
    precision: float


@dataclass
class Figure7Result:
    curves: dict[str, list[Figure7Point]]


def run_figure7(
    settings: ExperimentSettings,
    dataset: Optional[TypeAnnotationDataset] = None,
    variant: Optional[VariantResult] = None,
    modes: Sequence[CheckerMode] = (CheckerMode.STRICT, CheckerMode.LENIENT),
    max_predictions: int = 120,
    num_thresholds: int = 11,
) -> Figure7Result:
    """Reproduce Fig. 7: precision/recall of checker-correct predictions."""
    dataset = dataset or build_dataset(settings)
    if variant is None:
        variant = train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")
    assert variant.type_space is not None
    predictor = KNNTypePredictor(variant.type_space, k=settings.knn_k, p=settings.knn_p)

    curves: dict[str, list[Figure7Point]] = {}
    for mode in modes:
        checker = PredictionChecker(mode=mode)
        records: list[tuple[float, bool]] = []  # (confidence, checker-correct)
        for sample, embedding in list(zip(variant.test_samples, variant.test_embeddings))[:max_predictions]:
            prediction = predictor.predict(embedding)
            if prediction.top_type is None:
                continue
            graph = dataset.test.graphs[sample.graph_index]
            source = dataset.sources.get(graph.filename, graph.source)
            outcome = checker.check_prediction(
                source, sample.scope, sample.name, sample.kind, prediction.top_type,
                original_annotation=sample.annotation,
            )
            if outcome.skipped:
                continue
            records.append((prediction.confidence, outcome.ok))
        points: list[Figure7Point] = []
        total = max(len(records), 1)
        for threshold in np.linspace(0.0, 1.0, num_thresholds):
            kept = [(confidence, ok) for confidence, ok in records if confidence >= threshold]
            recall = len(kept) / total
            precision = sum(ok for _, ok in kept) / len(kept) if kept else 1.0
            points.append(Figure7Point(threshold=float(threshold), recall=recall, precision=precision))
        curves[mode.value] = points
    return Figure7Result(curves=curves)


# ---------------------------------------------------------------------------
# Corpus statistics and speed comparison
# ---------------------------------------------------------------------------


@dataclass
class CorpusStatsResult:
    summary: dict[str, object]
    top_types: list[tuple[str, int]]
    rare_annotation_fraction: float
    zipf_exponent: float


def run_corpus_stats(settings: ExperimentSettings, dataset: Optional[TypeAnnotationDataset] = None) -> CorpusStatsResult:
    """Reproduce the Sec. 6 "Data" statistics on the synthetic corpus."""
    dataset = dataset or build_dataset(settings)
    statistics = dataset.registry.statistics()
    return CorpusStatsResult(
        summary=dataset.summary(),
        top_types=dataset.registry.most_common(10),
        rare_annotation_fraction=statistics.rare_annotation_fraction,
        zipf_exponent=statistics.zipf_exponent,
    )


@dataclass
class SpeedComparisonResult:
    gnn_train_seconds_per_epoch: float
    rnn_train_seconds_per_epoch: float
    gnn_inference_seconds: float
    rnn_inference_seconds: float

    @property
    def train_speedup(self) -> float:
        if self.gnn_train_seconds_per_epoch == 0:
            return float("inf")
        return self.rnn_train_seconds_per_epoch / self.gnn_train_seconds_per_epoch

    @property
    def inference_speedup(self) -> float:
        if self.gnn_inference_seconds == 0:
            return float("inf")
        return self.rnn_inference_seconds / self.gnn_inference_seconds


def run_speed_comparison(settings: ExperimentSettings, dataset: Optional[TypeAnnotationDataset] = None) -> SpeedComparisonResult:
    """Reproduce the Sec. 6.1 "Computational Speed" comparison (GNN vs biRNN)."""
    dataset = dataset or build_dataset(settings)
    one_epoch = replace(settings.training, epochs=1)

    stopwatch = Stopwatch()
    results = {}
    for family in ("graph", "sequence"):
        encoder = build_encoder(dataset, replace(settings.encoder, family=family))
        trainer = Trainer(encoder, dataset, loss_kind=LossKind.TYPILUS, config=one_epoch)
        with stopwatch.measure(f"{family}_train"):
            trainer.train()
        with stopwatch.measure(f"{family}_inference"):
            trainer.embed_split(dataset.test)
        results[family] = encoder
    return SpeedComparisonResult(
        gnn_train_seconds_per_epoch=stopwatch.total("graph_train"),
        rnn_train_seconds_per_epoch=stopwatch.total("sequence_train"),
        gnn_inference_seconds=stopwatch.total("graph_inference"),
        rnn_inference_seconds=stopwatch.total("sequence_inference"),
    )
