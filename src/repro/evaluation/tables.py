"""Text rendering of the experiment results as paper-style tables."""

from __future__ import annotations

from typing import Sequence

from repro.checker.harness import PredictionCategory
from repro.evaluation.experiments import (
    CorpusStatsResult,
    SpeedComparisonResult,
    Table2Result,
    Table3Result,
    Table4Result,
    Table5Result,
)

_CATEGORY_LABELS = {
    PredictionCategory.ADDED: "eps -> tau",
    PredictionCategory.CHANGED: "tau -> tau'",
    PredictionCategory.UNCHANGED: "tau -> tau",
}


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = [_format_row(headers, widths), _format_row(["-" * width for width in widths], widths)]
    lines.extend(_format_row([str(cell) for cell in row], widths) for row in rows)
    return "\n".join(lines)


def format_table2(result: Table2Result) -> str:
    """Table 2: % exact match / % up-to-parametric / % neutral, all/common/rare."""
    headers = [
        "Model", "Exact(All)", "Exact(Common)", "Exact(Rare)",
        "UpToParam(All)", "UpToParam(Common)", "UpToParam(Rare)", "Neutral",
    ]
    rows = []
    for variant in result.rows:
        breakdown = variant.breakdown
        rows.append([
            variant.label,
            f"{100 * breakdown['all'].exact_match:.1f}",
            f"{100 * breakdown['common'].exact_match:.1f}",
            f"{100 * breakdown['rare'].exact_match:.1f}",
            f"{100 * breakdown['all'].match_up_to_parametric:.1f}",
            f"{100 * breakdown['common'].match_up_to_parametric:.1f}",
            f"{100 * breakdown['rare'].match_up_to_parametric:.1f}",
            f"{100 * breakdown['all'].type_neutral:.1f}",
        ])
    return render_table(headers, rows)


def format_table3(result: Table3Result) -> str:
    """Table 3: Typilus performance by symbol kind."""
    headers = ["Metric", "Variable", "Parameter", "Return"]
    kinds = ["variable", "parameter", "function_return"]
    rows = [
        ["% Exact Match"] + [f"{100 * result.by_kind[k].exact_match:.1f}" for k in kinds],
        ["% Match up to Parametric"] + [f"{100 * result.by_kind[k].match_up_to_parametric:.1f}" for k in kinds],
        ["% Type Neutral"] + [f"{100 * result.by_kind[k].type_neutral:.1f}" for k in kinds],
        ["Proportion of testset"] + [f"{100 * result.proportions[k]:.1f}%" for k in kinds],
    ]
    return render_table(headers, rows)


def format_table4(result: Table4Result) -> str:
    """Table 4: ablations (edges removed / node-initialiser variants)."""
    headers = ["Ablation", "Exact Match", "Type Neutral"]
    rows = [
        [row.label, f"{100 * row.exact_match:.1f}%", f"{100 * row.type_neutral:.1f}%"]
        for row in result.rows
    ]
    return render_table(headers, rows)


def format_table5(result: Table5Result) -> str:
    """Table 5: type-check accuracy per prediction category and checker mode."""
    headers = ["Category", "Mode", "Prop.", "Acc.", "Checked"]
    rows = []
    for mode, cells in result.by_mode.items():
        for cell in cells:
            rows.append([
                _CATEGORY_LABELS[cell.category],
                mode,
                f"{100 * cell.proportion:.0f}%",
                f"{100 * cell.accuracy:.0f}%",
                str(cell.checked),
            ])
        rows.append(["Overall", mode, "100%", f"{100 * result.overall_accuracy[mode]:.0f}%", str(result.total_checked[mode])])
    return render_table(headers, rows)


def format_corpus_stats(result: CorpusStatsResult) -> str:
    headers = ["Statistic", "Value"]
    rows = [[key, str(value)] for key, value in result.summary.items()]
    rows.append(["rare annotation fraction", f"{100 * result.rare_annotation_fraction:.1f}%"])
    rows.append(["zipf exponent", f"{result.zipf_exponent:.2f}"])
    rows.extend([f"top type: {name}", str(count)] for name, count in result.top_types)
    return render_table(headers, rows)


def format_speed_comparison(result: SpeedComparisonResult) -> str:
    headers = ["Model", "Train s/epoch", "Inference s"]
    rows = [
        ["GNN", f"{result.gnn_train_seconds_per_epoch:.2f}", f"{result.gnn_inference_seconds:.2f}"],
        ["biRNN", f"{result.rnn_train_seconds_per_epoch:.2f}", f"{result.rnn_inference_seconds:.2f}"],
        ["speedup", f"{result.train_speedup:.1f}x", f"{result.inference_speedup:.1f}x"],
    ]
    return render_table(headers, rows)
