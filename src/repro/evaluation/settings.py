"""Shared configuration of the experiment runners.

Every table/figure runner takes an :class:`ExperimentSettings` so the same
code serves three purposes:

* unit/integration tests use :meth:`ExperimentSettings.tiny` (seconds);
* the benchmark harness uses :meth:`ExperimentSettings.fast` (a couple of
  minutes for the full suite);
* a user who wants results closer to the paper's scale can build a custom
  configuration with more files, larger dimensions and more epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.pipeline import EncoderConfig
from repro.core.trainer import TrainingConfig
from repro.corpus.dataset import DatasetConfig
from repro.corpus.synthesis import SynthesisConfig


@dataclass
class ExperimentSettings:
    """Corpus, model and training knobs shared by all experiments."""

    synthesis: SynthesisConfig = field(default_factory=SynthesisConfig)
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    knn_k: int = 10
    knn_p: float = 1.0
    seed: int = 11

    # -- presets ---------------------------------------------------------------------

    @classmethod
    def tiny(cls) -> "ExperimentSettings":
        """A few seconds per training run; used by the test suite."""
        return cls(
            synthesis=SynthesisConfig(num_files=18, seed=5, num_user_classes=12),
            dataset=DatasetConfig(rarity_threshold=8, seed=5),
            encoder=EncoderConfig(hidden_dim=24, gnn_steps=2, seed=5),
            training=TrainingConfig(epochs=3, graphs_per_batch=6, learning_rate=8e-3, seed=5),
        )

    @classmethod
    def fast(cls) -> "ExperimentSettings":
        """The benchmark profile: small but large enough to show the paper's trends."""
        return cls(
            synthesis=SynthesisConfig(num_files=48, seed=11, num_user_classes=22),
            dataset=DatasetConfig(rarity_threshold=12, seed=11),
            encoder=EncoderConfig(hidden_dim=32, gnn_steps=3, seed=11),
            training=TrainingConfig(epochs=6, graphs_per_batch=8, learning_rate=5e-3, seed=11),
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentSettings":
        """Closer to the paper's setup (still CPU-sized); takes tens of minutes."""
        return cls(
            synthesis=SynthesisConfig(num_files=200, seed=11, num_user_classes=60),
            dataset=DatasetConfig(rarity_threshold=25, seed=11),
            encoder=EncoderConfig(hidden_dim=64, gnn_steps=8, seed=11),
            training=TrainingConfig(epochs=15, graphs_per_batch=8, learning_rate=3e-3, seed=11),
        )

    # -- derived configurations ---------------------------------------------------------

    def with_encoder(self, **overrides) -> "ExperimentSettings":
        return replace(self, encoder=replace(self.encoder, **overrides))

    def with_training(self, **overrides) -> "ExperimentSettings":
        return replace(self, training=replace(self.training, **overrides))
