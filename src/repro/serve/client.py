"""Client for the annotation daemon.

:class:`AnnotationClient` talks to a running :class:`~repro.serve.server.
AnnotationServer` over its Unix socket and reassembles the wire payloads
into the same :class:`~repro.engine.annotator.ProjectReport` /
:class:`~repro.engine.annotator.FileReport` objects the in-process
:class:`~repro.engine.annotator.ProjectAnnotator` produces — code written
against the engine's report types works unchanged against the daemon, and
the two paths can be compared suggestion for suggestion.

Each request uses its own connection (the server handles connections
concurrently and micro-batches the work behind them), so a client instance
is safe to share across threads.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Mapping, Union

from repro.engine.annotator import FileReport, ProjectReport, discover_sources, suggestion_from_payload
from repro.serve.protocol import ProtocolError, recv_frame, send_frame


class ServeError(RuntimeError):
    """The daemon answered a request with an error."""


class AnnotationClient:
    """Sends annotation / adaptation requests to a running daemon."""

    def __init__(
        self,
        socket_path: Union[str, Path],
        timeout: float = 120.0,
        disagreement_threshold: float = 0.8,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = timeout
        self.disagreement_threshold = disagreement_threshold

    # -- transport ---------------------------------------------------------------------

    def _request(self, payload: dict) -> dict:
        connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            connection.settimeout(self.timeout)
            connection.connect(str(self.socket_path))
            send_frame(connection, payload)
            response = recv_frame(connection)
        finally:
            connection.close()
        if response is None:
            raise ProtocolError("server closed the connection without answering")
        if not response.get("ok"):
            raise ServeError(str(response.get("error", "unknown server error")))
        return response

    # -- operations --------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe: marker count, dimension and index flavour."""
        return self._request({"op": "ping"})

    def wait_until_ready(self, timeout: float = 10.0, poll_interval: float = 0.05) -> dict:
        """Poll :meth:`ping` until the daemon answers (e.g. right after spawn)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except (OSError, ProtocolError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(f"no daemon answered on {self.socket_path} within {timeout:.1f}s")
                time.sleep(poll_interval)

    def stats(self) -> dict:
        """The daemon's request / micro-batching counters."""
        return self._request({"op": "stats"})

    def annotate_sources(self, sources: Mapping[str, str]) -> ProjectReport:
        """Annotate an in-memory file set through the daemon.

        The returned report matches a one-shot
        :meth:`~repro.engine.annotator.ProjectAnnotator.annotate_sources`
        run of the same pipeline suggestion for suggestion;
        ``elapsed_seconds`` is the client-observed round trip.
        """
        started = time.monotonic()
        response = self._request({"op": "annotate", "sources": dict(sources)})
        report = ProjectReport(
            elapsed_seconds=time.monotonic() - started,
            disagreement_threshold=self.disagreement_threshold,
        )
        for filename, payloads in response["files"]:
            report.files.append(
                FileReport(
                    filename=filename,
                    suggestions=[suggestion_from_payload(payload) for payload in payloads],
                )
            )
        report.skipped_files.extend(response["skipped"])
        return report

    def annotate_directory(self, directory: Union[str, Path], pattern: str = "**/*.py") -> ProjectReport:
        """Annotate every matching file under a directory through the daemon."""
        sources, unreadable = discover_sources(directory, pattern)
        report = self.annotate_sources(sources)
        report.skipped_files.extend(unreadable)
        return report

    def adapt(self, type_name: str, sources: Mapping[str, str]) -> dict:
        """Extend the daemon's type map from annotated examples (Sec. 4.2)."""
        return self._request({"op": "adapt", "type_name": type_name, "sources": dict(sources)})

    def shutdown(self) -> dict:
        """Ask the daemon to stop; returns its acknowledgement."""
        return self._request({"op": "shutdown"})
