"""Client for the annotation daemon.

:class:`AnnotationClient` talks to a running :class:`~repro.serve.server.
AnnotationServer` over its Unix socket or TCP address (any form
:func:`~repro.serve.protocol.parse_address` understands — a path,
``host:port``, ``tcp://…`` / ``unix://…``) and reassembles the wire
payloads into the same :class:`~repro.engine.annotator.ProjectReport` /
:class:`~repro.engine.annotator.FileReport` objects the in-process
:class:`~repro.engine.annotator.ProjectAnnotator` produces — code written
against the engine's report types works unchanged against the daemon, and
the two paths can be compared suggestion for suggestion.

Failure handling is explicit:

* a :class:`RetryPolicy` (optional) retries **only** transient conditions —
  a connect failure (daemon restarting) or an ``overloaded`` shed — with
  exponential backoff and deterministic seeded jitter, honouring the
  server's ``retry_after_seconds`` hint.  Annotation errors, protocol
  errors and expired deadlines are never retried: re-sending them cannot
  succeed and may duplicate side effects;
* every request can carry a deadline (``timeout_seconds``), propagated on
  the wire so the server drops the request instead of doing work whose
  answer nobody will read.

Each request uses its own connection (the server handles connections
concurrently and micro-batches the work behind them), so a client instance
is safe to share across threads.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

from repro.engine.annotator import FileReport, ProjectReport, discover_sources, suggestion_from_payload
from repro.serve.protocol import (
    ProtocolError,
    ServeAddress,
    connect_address,
    format_address,
    recv_frame,
    send_frame,
)


class ServeError(RuntimeError):
    """The daemon answered a request with an error.

    ``kind`` mirrors the wire ``error_kind`` (``overloaded``, ``expired``,
    ``stopping``, ``annotation``, ``crashed``, ...); ``retry_after_seconds``
    carries the server's backoff hint on ``overloaded`` sheds.
    """

    def __init__(
        self,
        message: str,
        kind: str = "error",
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.retry_after_seconds = retry_after_seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    Attempt ``n`` (0-based) sleeps ``base_delay_seconds * 2**n``, capped at
    ``max_delay_seconds``, scaled by a jitter factor drawn from
    ``[1 - jitter_fraction, 1 + jitter_fraction]`` using ``random.Random(
    seed)`` — the same policy instance always produces the same delay
    sequence, so retry behaviour is reproducible in tests and incident
    replays.  When the server supplies ``retry_after_seconds``, the delay is
    at least that hint.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    jitter_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be within [0, 1]")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff sequence (one delay per retry)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay_seconds, self.base_delay_seconds * (2.0 ** attempt))
            if self.jitter_fraction:
                delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay)


class _Transient(Exception):
    """Internal: a retryable failure (connect refused or overloaded shed)."""

    def __init__(self, cause: BaseException, retry_after_seconds: Optional[float] = None) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.retry_after_seconds = retry_after_seconds


class AnnotationClient:
    """Sends annotation / adaptation requests to a running daemon."""

    def __init__(
        self,
        address: ServeAddress,
        timeout: float = 120.0,
        disagreement_threshold: float = 0.8,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.disagreement_threshold = disagreement_threshold
        self.retry_policy = retry_policy

    # -- transport ---------------------------------------------------------------------

    def _request_once(self, payload: dict, deadline: Optional[float]) -> dict:
        socket_timeout = self.timeout
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError("deadline expired before the request was sent", kind="expired")
            payload = dict(payload, timeout_seconds=remaining)
            socket_timeout = min(socket_timeout, remaining + 1.0)
        try:
            connection = connect_address(self.address, timeout=socket_timeout)
        except OSError as error:
            # Nothing was sent: retrying a connect failure is always safe.
            raise _Transient(error) from error
        try:
            send_frame(connection, payload)
            response = recv_frame(connection)
        finally:
            connection.close()
        if response is None:
            raise ProtocolError("server closed the connection without answering")
        if not response.get("ok"):
            error = ServeError(
                str(response.get("error", "unknown server error")),
                kind=str(response.get("error_kind", "error")),
                retry_after_seconds=response.get("retry_after_seconds"),
            )
            if error.kind == "overloaded":
                raise _Transient(error, retry_after_seconds=error.retry_after_seconds) from error
            raise error
        return response

    def _request(self, payload: dict, timeout_seconds: Optional[float] = None) -> dict:
        deadline = None if timeout_seconds is None else time.monotonic() + timeout_seconds
        delays = self.retry_policy.delays() if self.retry_policy is not None else iter(())
        while True:
            try:
                return self._request_once(payload, deadline)
            except _Transient as transient:
                delay = next(delays, None)
                if delay is None:
                    raise transient.cause
                if transient.retry_after_seconds is not None:
                    delay = max(delay, float(transient.retry_after_seconds))
                if deadline is not None and time.monotonic() + delay >= deadline:
                    raise transient.cause
                time.sleep(delay)

    # -- operations --------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe: lifecycle state, marker count, dimension, index flavour."""
        return self._request({"op": "ping"})

    def wait_until_ready(
        self,
        timeout: float = 10.0,
        poll_interval: float = 0.01,
        max_poll_interval: float = 0.5,
    ) -> dict:
        """Poll :meth:`ping` until the daemon reports state ``ready``.

        Poll intervals back off exponentially from ``poll_interval`` up to
        ``max_poll_interval`` instead of spinning at a fixed rate.  The
        timeout error says *why* readiness never arrived: no socket / nobody
        listening (the daemon never came up) versus a daemon that answers
        but is not ready (e.g. mid-reload or draining).
        """
        deadline = time.monotonic() + timeout
        last = "no connection attempted yet"
        interval = max(0.001, poll_interval)
        while True:
            try:
                info = self.ping()
            except (FileNotFoundError, ConnectionRefusedError) as error:
                last = f"no daemon listening ({type(error).__name__})"
            except (OSError, ProtocolError, ServeError) as error:
                last = f"daemon not answering cleanly: {error}"
            else:
                state = info.get("state", "ready")
                if state == "ready":
                    return info
                last = f"daemon answering but not ready (state {state!r})"
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"daemon on {format_address(self.address)} not ready within {timeout:.1f}s: {last}"
                )
            time.sleep(min(interval, max(0.0, deadline - now)))
            interval = min(interval * 2.0, max_poll_interval)

    def stats(self) -> dict:
        """The daemon's request / micro-batching / degradation counters."""
        return self._request({"op": "stats"})

    def annotate_sources(
        self, sources: Mapping[str, str], timeout_seconds: Optional[float] = None
    ) -> ProjectReport:
        """Annotate an in-memory file set through the daemon.

        The returned report matches a one-shot
        :meth:`~repro.engine.annotator.ProjectAnnotator.annotate_sources`
        run of the same pipeline suggestion for suggestion;
        ``elapsed_seconds`` is the client-observed round trip.  With
        ``timeout_seconds`` the deadline travels on the wire: the server
        drops the request unprocessed (``error_kind="expired"``) rather
        than answer after nobody is listening.
        """
        started = time.monotonic()
        response = self._request(
            {"op": "annotate", "sources": dict(sources)}, timeout_seconds=timeout_seconds
        )
        report = ProjectReport(
            elapsed_seconds=time.monotonic() - started,
            disagreement_threshold=self.disagreement_threshold,
        )
        for filename, payloads in response["files"]:
            report.files.append(
                FileReport(
                    filename=filename,
                    suggestions=[suggestion_from_payload(payload) for payload in payloads],
                )
            )
        report.skipped_files.extend(response["skipped"])
        return report

    def annotate_directory(
        self,
        directory: Union[str, Path],
        pattern: str = "**/*.py",
        timeout_seconds: Optional[float] = None,
    ) -> ProjectReport:
        """Annotate every matching file under a directory through the daemon."""
        sources, unreadable = discover_sources(directory, pattern)
        report = self.annotate_sources(sources, timeout_seconds=timeout_seconds)
        report.skipped_files.extend(unreadable)
        return report

    def adapt(self, type_name: str, sources: Mapping[str, str]) -> dict:
        """Extend the daemon's type map from annotated examples (Sec. 4.2)."""
        return self._request({"op": "adapt", "type_name": type_name, "sources": dict(sources)})

    def reload(self, model_dir: Union[str, Path]) -> dict:
        """Hot-swap the daemon onto a pipeline saved at ``model_dir``.

        The daemon loads the new pipeline in the background and swaps it in
        between micro-batches — in-flight requests finish on the old
        pipeline, none fail.  Returns the acknowledgement with the old and
        new marker counts.
        """
        return self._request({"op": "reload", "model_dir": str(model_dir)})

    def shutdown(self) -> dict:
        """Ask the daemon to stop; returns its acknowledgement."""
        return self._request({"op": "shutdown"})
