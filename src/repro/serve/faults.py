"""Deterministic fault injection for the annotation daemon.

Operational failures — an annotator that raises on one request, a batcher
thread that dies, a reload that cannot read its model directory, a response
frame torn mid-write — are rare in tests and constant in production.  The
:class:`FaultInjector` turns each of them into a *named failure point* the
server consults at the exact moment the real failure would occur, so the
chaos suite (``tests/test_serve_faults.py``) can prove every degradation
path without sleeps, monkeypatching or real crashes:

* ``arm(point, error=...)`` makes the next ``fire(point)`` raise
  :class:`InjectedFault` there — the server's own recovery code (poison
  bisection, the batcher restart guard, the reload failure path) then runs
  exactly as it would for an organic exception;
* ``arm(point, gate=threading.Event())`` makes ``fire(point)`` *block*
  until the test sets the gate — the deterministic replacement for "a slow
  batch": the batcher is pinned at a known point while the test fills the
  admission queue, then released;
* ``match=`` restricts a fault to requests it should poison (e.g. only
  batches containing ``poison.py``), which is how the bisection tests make
  one request fail while its neighbors succeed;
* ``wait_for(point)`` lets a test synchronise on the server actually
  reaching the failure point instead of sleeping and hoping.

An un-armed injector is free: ``fire`` returns after one attribute read, so
every server carries one unconditionally.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

#: The failure points the server consults, in the order a request meets them.
#:
#: ``batcher``     — top of the batcher loop, with a request in hand (the
#:                   thread-death scenario the restart guard recovers from).
#: ``slow_batch``  — start of a micro-batch, before any engine work (arm
#:                   with a ``gate`` to pin the batcher deterministically).
#: ``annotator``   — immediately before each ``annotate_sources`` engine
#:                   call, including the bisected halves of a failing batch.
#: ``reload``      — inside the background loader, before reading the new
#:                   pipeline from disk.
#: ``worker``      — in the fleet front-end, immediately before a merged
#:                   micro-batch is sent to an annotation worker process; an
#:                   error arm is treated as a worker crash (the pool kills
#:                   and restarts the worker, the batch fails fast with
#:                   ``error_kind="crashed"`` instead of being bisected).
#: ``torn_frame``  — before a response frame is written; the server then
#:                   emulates a torn write (partial header + dropped
#:                   connection) instead of raising.
FAULT_POINTS = ("batcher", "slow_batch", "annotator", "reload", "worker", "torn_frame")

#: How long a gated fire waits for its gate before giving up; a bound so a
#: buggy test cannot wedge the daemon forever.
GATE_TIMEOUT_SECONDS = 60.0


class InjectedFault(RuntimeError):
    """Raised at an armed failure point (never by an un-armed injector)."""


class _Arm:
    __slots__ = ("times", "error", "gate", "match")

    def __init__(
        self,
        times: Optional[int],
        error: str,
        gate: Optional[threading.Event],
        match: Optional[Callable[[dict], bool]],
    ) -> None:
        self.times = times
        self.error = error
        self.gate = gate
        self.match = match


class FaultInjector:
    """Named, armable failure points consulted by :class:`AnnotationServer`."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._arms: dict[str, _Arm] = {}
        self._fired: dict[str, int] = {}

    @staticmethod
    def _check_point(point: str) -> None:
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}: valid points are {', '.join(FAULT_POINTS)}")

    def arm(
        self,
        point: str,
        *,
        times: Optional[int] = 1,
        error: str = "injected fault",
        gate: Optional[threading.Event] = None,
        match: Optional[Callable[[dict], bool]] = None,
    ) -> "FaultInjector":
        """Arm a failure point for the next ``times`` matching fires.

        ``times=None`` keeps the point armed until :meth:`disarm`.  With a
        ``gate`` the fire *blocks* until the event is set (a deterministic
        slow path); without one it raises :class:`InjectedFault(error)`.
        ``match`` receives the fire's context dict and can veto the fault
        for non-matching requests (a veto does not consume ``times``).
        """
        self._check_point(point)
        if times is not None and times < 1:
            raise ValueError("times must be a positive count or None for unlimited")
        with self._cond:
            self._arms[point] = _Arm(times, error, gate, match)
        return self

    def disarm(self, point: str) -> None:
        self._check_point(point)
        with self._cond:
            self._arms.pop(point, None)

    def reset(self) -> None:
        """Disarm every point and forget fire counts."""
        with self._cond:
            self._arms.clear()
            self._fired.clear()

    def fired(self, point: str) -> int:
        """How many times an armed ``point`` actually fired."""
        self._check_point(point)
        with self._cond:
            return self._fired.get(point, 0)

    def wait_for(self, point: str, count: int = 1, timeout: float = 10.0) -> bool:
        """Block until ``point`` has fired ``count`` times (test synchronisation)."""
        self._check_point(point)
        with self._cond:
            return self._cond.wait_for(lambda: self._fired.get(point, 0) >= count, timeout=timeout)

    def fire(self, point: str, context: Optional[dict] = None) -> bool:
        """Consult a failure point; a no-op unless the point is armed.

        Raises :class:`InjectedFault` for error arms.  For gate arms, blocks
        until the gate is set and returns ``True`` (callers that need
        non-raise semantics, e.g. ``torn_frame``, use the return value).
        Returns ``False`` when nothing was armed or the match vetoed.
        """
        if not self._arms:  # fast path: an idle injector costs one dict check
            return False
        with self._cond:
            arm = self._arms.get(point)
            if arm is None:
                return False
            if arm.match is not None and not arm.match(context or {}):
                return False
            if arm.times is not None:
                arm.times -= 1
                if arm.times <= 0:
                    del self._arms[point]
            self._fired[point] = self._fired.get(point, 0) + 1
            self._cond.notify_all()
            gate, error = arm.gate, arm.error
        if gate is not None:
            gate.wait(timeout=GATE_TIMEOUT_SECONDS)
            return True
        raise InjectedFault(f"{point}: {error}")
