"""A long-lived annotation daemon with request micro-batching.

:class:`AnnotationServer` loads a trained pipeline **once** and answers
annotation requests over a local Unix stream socket, which is what turns the
batch-first engine into a service: clients pay per request, never per model
load.  Three design points:

* **Micro-batching.**  Every ``annotate`` request lands on one queue; a
  single batcher thread drains whatever arrived within a small window (or up
  to ``max_batch_requests``) and routes the *union* of their files — each
  filename namespaced by its request — through one
  :meth:`~repro.engine.annotator.ProjectAnnotator.annotate_sources` call.
  Concurrent clients therefore share one embedding pass and one vectorized
  kNN query, and because the merged batch runs the exact same code path as a
  one-shot annotation, coalescing cannot change any answer.
* **Serialized mutation.**  ``adapt`` requests (open-vocabulary type-map
  extension, Sec. 4.2) flow through the same queue, so the pipeline is only
  ever touched by the batcher thread; an adaptation is a cheap columnar
  index *extension*, not a rebuild, and the next micro-batch simply sees the
  grown TypeSpace.
* **Plain protocol.**  Length-prefixed JSON frames
  (:mod:`repro.serve.protocol`); one response per request; ``shutdown`` is
  an ordinary request, acknowledged before the listener closes.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.pipeline import TypilusPipeline
from repro.engine.annotator import AnnotatorConfig, ProjectAnnotator, suggestion_to_payload
from repro.serve.protocol import ProtocolError, recv_frame, send_frame

#: Separates the request ordinal from the filename in a merged micro-batch;
#: NUL cannot appear in a path, so the namespacing is collision-free.
_NAMESPACE = "\x00"


@dataclass
class ServeConfig:
    """Micro-batching knobs of the daemon."""

    #: How long the batcher waits for more requests after the first one.
    batch_window_seconds: float = 0.01
    #: Hard cap on requests coalesced into one annotation pass.
    max_batch_requests: int = 32


@dataclass
class ServeStats:
    """Counters the daemon exposes through the ``stats`` op."""

    requests: int = 0
    annotate_requests: int = 0
    adapt_requests: int = 0
    micro_batches: int = 0
    largest_batch: int = 0
    coalesced_requests: int = 0  # annotate requests that shared their batch
    errors: int = 0

    def summary(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "annotate_requests": self.annotate_requests,
            "adapt_requests": self.adapt_requests,
            "micro_batches": self.micro_batches,
            "largest_batch": self.largest_batch,
            "coalesced_requests": self.coalesced_requests,
            "errors": self.errors,
        }


class _Pending:
    """One queued request: the batcher fills ``result`` and sets ``done``."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[dict] = None

    def fail(self, message: str) -> None:
        self.result = {"ok": False, "error": message}
        self.done.set()


class _PendingAnnotate(_Pending):
    def __init__(self, sources: dict[str, str]) -> None:
        super().__init__()
        self.sources = sources


class _PendingAdapt(_Pending):
    def __init__(self, type_name: str, sources: dict[str, str]) -> None:
        super().__init__()
        self.type_name = type_name
        self.sources = sources


@dataclass
class _BatchPlanState:
    batch: list[_PendingAnnotate] = field(default_factory=list)
    carry: Optional[_PendingAdapt] = None
    stopping: bool = False


class AnnotationServer:
    """Serves a loaded pipeline over a Unix socket, micro-batching requests."""

    def __init__(
        self,
        pipeline: TypilusPipeline,
        socket_path: Union[str, Path],
        annotator_config: Optional[AnnotatorConfig] = None,
        serve_config: Optional[ServeConfig] = None,
    ) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX platforms
            raise RuntimeError("the annotation daemon requires AF_UNIX sockets")
        self.pipeline = pipeline
        self.socket_path = Path(socket_path)
        self.annotator = ProjectAnnotator(pipeline, annotator_config or AnnotatorConfig())
        self.config = serve_config or ServeConfig()
        self.stats = ServeStats()
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stats_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "AnnotationServer":
        """Bind the socket and start the acceptor and batcher threads."""
        if self._listener is not None:
            return self
        self._reclaim_stale_socket()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(64)
        # Closing a socket does not wake a thread blocked in accept() on
        # Linux; a short timeout lets the acceptor poll the stop flag instead.
        listener.settimeout(0.25)
        self._listener = listener
        for name, target in (("serve-batcher", self._batch_loop), ("serve-acceptor", self._accept_loop)):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`shutdown`) arrives."""
        self.start()
        self._stop.wait()
        self.close()

    def shutdown(self) -> None:
        """Stop accepting, drain the queue sentinel and remove the socket."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._queue.put(None)  # unblocks the batcher
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        """Shut down and join the worker threads."""
        self.shutdown()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def _reclaim_stale_socket(self) -> None:
        """Unlink a leftover socket file, but refuse to evict a live daemon."""
        if not self.socket_path.exists():
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.25)
            probe.connect(str(self.socket_path))
        except OSError:
            self.socket_path.unlink()  # stale: nothing is listening
        else:
            raise RuntimeError(f"another daemon is already serving on {self.socket_path}")
        finally:
            probe.close()

    # -- connection handling -----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed during shutdown
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,), name="serve-conn", daemon=True
            )
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while not self._stop.is_set():
                try:
                    request = recv_frame(connection)
                except ProtocolError as error:
                    self._count(errors=1)
                    self._try_send(connection, {"ok": False, "error": str(error)})
                    return
                if request is None:
                    return
                response = self._dispatch(request)
                if not self._try_send(connection, response):
                    return
                if request.get("op") == "shutdown":
                    self.shutdown()
                    return

    @staticmethod
    def _try_send(connection: socket.socket, payload: dict) -> bool:
        try:
            send_frame(connection, payload)
            return True
        except OSError:
            return False

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                if name == "largest_batch":  # high-water mark, not a sum
                    self.stats.largest_batch = max(self.stats.largest_batch, delta)
                else:
                    setattr(self.stats, name, getattr(self.stats, name) + delta)

    # -- request dispatch --------------------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        self._count(requests=1)
        op = request.get("op")
        if op == "ping":
            space = self.pipeline.type_space
            return {
                "ok": True,
                "markers": len(space),
                "dim": space.dim,
                "approximate_index": space.approximate_index,
                "index_kind": space.index_kind,
                "dtype": str(space.dtype),
            }
        if op == "stats":
            with self._stats_lock:
                summary = self.stats.summary()
            summary.update(ok=True, markers=len(self.pipeline.type_space))
            return summary
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        if op == "annotate":
            sources = self._validated_sources(request)
            if sources is None:
                self._count(errors=1)
                return {"ok": False, "error": "'sources' must map filenames to source text"}
            self._count(annotate_requests=1)
            return self._enqueue_and_wait(_PendingAnnotate(sources))
        if op == "adapt":
            sources = self._validated_sources(request)
            type_name = request.get("type_name")
            if sources is None or not isinstance(type_name, str) or not type_name:
                self._count(errors=1)
                return {"ok": False, "error": "'adapt' needs a 'type_name' string and a 'sources' map"}
            self._count(adapt_requests=1)
            return self._enqueue_and_wait(_PendingAdapt(type_name, sources))
        self._count(errors=1)
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _enqueue_and_wait(self, pending: _Pending) -> dict:
        if self._stop.is_set():
            return {"ok": False, "error": "daemon is stopping"}
        self._queue.put(pending)
        # A shutdown can race past the check above and beat this request into
        # the queue: the batcher may consume its sentinel and exit without
        # ever seeing the item.  Poll the stop flag instead of blocking
        # forever; on shutdown, grant the batcher a grace period to finish a
        # batch that may already include this request, then give up.
        while not pending.done.wait(timeout=0.5):
            if self._stop.is_set() and not pending.done.wait(timeout=5.0):
                pending.fail("daemon is stopping")
                break
        assert pending.result is not None
        return pending.result

    @staticmethod
    def _validated_sources(request: dict) -> Optional[dict[str, str]]:
        sources = request.get("sources")
        if not isinstance(sources, dict):
            return None
        if any(not isinstance(key, str) or not isinstance(value, str) for key, value in sources.items()):
            return None
        return sources

    # -- the batcher -------------------------------------------------------------------

    def _batch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            if isinstance(item, _PendingAdapt):
                self._run_adapt(item)
                continue
            state = self._collect_batch(item)
            self._run_annotate_batch(state.batch)
            if state.carry is not None:
                self._run_adapt(state.carry)
            if state.stopping:
                break
        # Fail whatever raced past the shutdown sentinel so no client hangs.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                item.fail("daemon is stopping")

    def _collect_batch(self, first: _PendingAnnotate) -> _BatchPlanState:
        """Drain compatible requests for one micro-batch.

        An ``adapt`` request ends the drain (it must observe the queue order:
        annotations enqueued before it run first, ones after it see the grown
        type map), as does the shutdown sentinel.
        """
        state = _BatchPlanState(batch=[first])
        deadline = time.monotonic() + self.config.batch_window_seconds
        while len(state.batch) < self.config.max_batch_requests:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                state.stopping = True
                break
            if isinstance(item, _PendingAdapt):
                state.carry = item
                break
            state.batch.append(item)
        return state

    def _run_annotate_batch(self, batch: list[_PendingAnnotate]) -> None:
        merged: dict[str, str] = {}
        for ordinal, pending in enumerate(batch):
            for filename, source in pending.sources.items():
                merged[f"{ordinal}{_NAMESPACE}{filename}"] = source
        try:
            report = self.annotator.annotate_sources(merged)
        except Exception as error:  # noqa: BLE001 - a bad request must not kill the daemon
            self._count(errors=1)
            for pending in batch:
                pending.fail(f"annotation failed: {error}")
            return
        files_by_request: list[list] = [[] for _ in batch]
        for file_report in report.files:
            ordinal, _, filename = file_report.filename.partition(_NAMESPACE)
            files_by_request[int(ordinal)].append(
                [filename, [suggestion_to_payload(suggestion) for suggestion in file_report.suggestions]]
            )
        skipped_by_request: list[list[str]] = [[] for _ in batch]
        for namespaced in report.skipped_files:
            ordinal, _, filename = namespaced.partition(_NAMESPACE)
            skipped_by_request[int(ordinal)].append(filename)
        self._count(
            micro_batches=1,
            largest_batch=len(batch),
            coalesced_requests=len(batch) if len(batch) > 1 else 0,
        )
        for ordinal, pending in enumerate(batch):
            pending.result = {
                "ok": True,
                "files": files_by_request[ordinal],
                "skipped": skipped_by_request[ordinal],
                "batch_size": len(batch),
                "batch_reused_files": report.reused_files,
            }
            pending.done.set()

    def _run_adapt(self, pending: _PendingAdapt) -> None:
        try:
            added = self.pipeline.adapt_with_sources(
                pending.type_name, pending.sources, provenance="serve:adapt"
            )
        except Exception as error:  # noqa: BLE001 - a bad request must not kill the daemon
            self._count(errors=1)
            pending.fail(f"adaptation failed: {error}")
            return
        pending.result = {
            "ok": True,
            "added_markers": added,
            "markers": len(self.pipeline.type_space),
        }
        pending.done.set()
