"""A fault-tolerant annotation daemon with request micro-batching.

:class:`AnnotationServer` loads a trained pipeline **once** and answers
annotation requests over a local Unix stream socket, which is what turns the
batch-first engine into a service: clients pay per request, never per model
load.  Design points:

* **Micro-batching.**  Every ``annotate`` request lands on one queue; a
  single batcher thread drains whatever arrived within a small window (or up
  to ``max_batch_requests``) and routes the *union* of their files — each
  filename namespaced by its request — through one
  :meth:`~repro.engine.annotator.ProjectAnnotator.annotate_sources` call.
  Concurrent clients therefore share one embedding pass and one vectorized
  kNN query, and because the merged batch runs the exact same code path as a
  one-shot annotation, coalescing cannot change any answer.
* **Engineered failure modes.**  Admission is bounded: past
  ``max_queue_depth`` pending requests the daemon sheds load immediately
  with an ``overloaded`` error carrying a ``retry_after_seconds`` hint,
  instead of letting latency grow without bound.  Requests carry optional
  deadlines on the wire (``timeout_seconds``); the batcher drops
  already-expired requests *before* spending an embedding pass on them.
  When a merged micro-batch fails, the batcher bisects it and re-runs the
  halves, so one poison request fails alone instead of failing its
  neighbors.  If the batcher thread itself dies, a restart guard fails every
  pending request fast (``batcher crashed``) and starts a fresh batcher —
  a crash costs one batch, never the daemon.
* **Hot reload.**  A ``reload`` request loads a new pipeline from disk on a
  background thread and atomically swaps it in *between* micro-batches:
  in-flight batches finish on the old pipeline, the next batch sees the new
  one, and no request ever fails because of a swap.  ``ping`` reports a
  lifecycle state (``ready`` / ``reloading`` / ``draining`` /
  ``overloaded``).
* **Serialized mutation.**  ``adapt`` requests (open-vocabulary type-map
  extension, Sec. 4.2) and the reload swap flow through the same queue, so
  the pipeline is only ever touched by the batcher thread.
* **Deterministic chaos.**  Every degradation path above is guarded by a
  named :class:`~repro.serve.faults.FaultInjector` point the server
  consults at the exact moment the organic failure would occur, so the
  chaos suite proves each path without sleeps or real crashes.
* **Plain protocol.**  Length-prefixed JSON frames
  (:mod:`repro.serve.protocol`), with a configurable per-frame byte cap
  validated before any buffer is allocated; one response per request;
  ``shutdown`` is an ordinary request, acknowledged before the listener
  closes.
* **Fleet mode.**  With a :class:`~repro.serve.workers.WorkerPool` the same
  front-end holds **no pipeline at all**: micro-batches are dispatched to N
  annotation worker processes that each memory-map the same saved model, so
  batches run concurrently across cores while the marker matrix occupies
  physical memory once.  ``adapt`` and ``reload`` quiesce in-flight
  dispatches and broadcast to every worker behind a barrier, so no two
  workers ever answer from different type maps; a worker crash fails only
  its own batch (``error_kind="crashed"``, never bisected) and the pool
  restarts it.  The server can listen on a Unix socket, a TCP address, or
  both — the single-process Unix-socket daemon is unchanged and remains the
  default.
"""

from __future__ import annotations

import math
import queue
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.pipeline import TypilusPipeline
from repro.engine.annotator import AnnotatorConfig, ProjectAnnotator, suggestion_to_payload
from repro.serve.faults import FaultInjector, InjectedFault
from repro.serve.protocol import MAX_FRAME_BYTES, ProtocolError, parse_address, recv_frame, send_frame
from repro.serve.workers import WorkerCrashed, WorkerPool

#: Separates the request ordinal from the filename in a merged micro-batch;
#: NUL cannot appear in a path, so the namespacing is collision-free.
_NAMESPACE = "\x00"

#: Lifecycle states reported by the ``ping`` op.
LIFECYCLE_STATES = ("ready", "reloading", "draining", "overloaded")


@dataclass
class ServeConfig:
    """Micro-batching and admission-control knobs of the daemon."""

    #: How long the batcher waits for more requests after the first one.
    batch_window_seconds: float = 0.01
    #: Hard cap on requests coalesced into one annotation pass.
    max_batch_requests: int = 32
    #: Admission bound: annotate/adapt requests queued or in flight beyond
    #: this are shed immediately with an ``overloaded`` error instead of
    #: growing an unbounded queue.
    max_queue_depth: int = 64
    #: Per-frame byte cap enforced on both receive and send.
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Deadline applied to requests that do not carry their own
    #: ``timeout_seconds`` (``None`` = no server-side default deadline).
    default_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be at least 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")


@dataclass
class ServeStats:
    """Counters the daemon exposes through the ``stats`` op.

    ``errors`` counts failed *requests* (a failing micro-batch of five
    requests is five errors, not one); ``shed_requests`` and
    ``expired_requests`` have dedicated counters and are *not* double
    counted as errors, since shedding and deadline expiry are engineered
    degradation, not processing failure.
    """

    requests: int = 0
    annotate_requests: int = 0
    adapt_requests: int = 0
    micro_batches: int = 0
    largest_batch: int = 0
    coalesced_requests: int = 0  # annotate requests that shared their batch
    errors: int = 0
    shed_requests: int = 0  # rejected at admission (queue full)
    expired_requests: int = 0  # deadline passed before the batch ran
    poison_requests: int = 0  # isolated by bisection; failed alone
    reloads: int = 0
    failed_reloads: int = 0
    batcher_restarts: int = 0

    def summary(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "annotate_requests": self.annotate_requests,
            "adapt_requests": self.adapt_requests,
            "micro_batches": self.micro_batches,
            "largest_batch": self.largest_batch,
            "coalesced_requests": self.coalesced_requests,
            "errors": self.errors,
            "shed_requests": self.shed_requests,
            "expired_requests": self.expired_requests,
            "poison_requests": self.poison_requests,
            "reloads": self.reloads,
            "failed_reloads": self.failed_reloads,
            "batcher_restarts": self.batcher_restarts,
        }


class _Pending:
    """One queued request: the batcher fills ``result`` and sets ``done``."""

    def __init__(self, deadline: Optional[float] = None) -> None:
        self.done = threading.Event()
        self.result: Optional[dict] = None
        self.deadline = deadline  # absolute time.monotonic(), or None

    def fail(self, message: str, kind: str = "error", **extra) -> None:
        self.result = {"ok": False, "error": message, "error_kind": kind, **extra}
        self.done.set()

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class _PendingAnnotate(_Pending):
    def __init__(self, sources: dict[str, str], deadline: Optional[float] = None) -> None:
        super().__init__(deadline)
        self.sources = sources


class _PendingAdapt(_Pending):
    def __init__(self, type_name: str, sources: dict[str, str], deadline: Optional[float] = None) -> None:
        super().__init__(deadline)
        self.type_name = type_name
        self.sources = sources


class _PendingReload(_Pending):
    """A reload in flight: the loader fills ``pipeline``, the batcher swaps it."""

    def __init__(self, model_dir: str) -> None:
        super().__init__()
        self.model_dir = model_dir
        self.pipeline: Optional[TypilusPipeline] = None


@dataclass
class _BatchPlanState:
    batch: list[_PendingAnnotate] = field(default_factory=list)
    carry: Optional[_Pending] = None  # an adapt or reload swap that ended the drain
    stopping: bool = False


class AnnotationServer:
    """Serves annotation requests over Unix and/or TCP sockets.

    The pipeline either lives in-process (the single-process daemon: one
    batcher thread runs every micro-batch through one
    :class:`~repro.engine.annotator.ProjectAnnotator`) or in a
    :class:`~repro.serve.workers.WorkerPool` of N annotation worker
    processes (the fleet front-end: the batcher hands each collected
    micro-batch to a dispatcher thread, so up to N batches run
    concurrently).  Exactly one of ``pipeline`` / ``worker_pool`` must be
    given, and at least one of ``socket_path`` / ``tcp_address``.
    """

    def __init__(
        self,
        pipeline: Optional[TypilusPipeline],
        socket_path: Optional[Union[str, Path]] = None,
        annotator_config: Optional[AnnotatorConfig] = None,
        serve_config: Optional[ServeConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        tcp_address: Optional[Union[str, tuple]] = None,
        worker_pool: Optional[WorkerPool] = None,
    ) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX platforms
            raise RuntimeError("the annotation daemon requires AF_UNIX sockets")
        if (pipeline is None) == (worker_pool is None):
            raise ValueError(
                "exactly one of pipeline (in-process) or worker_pool (fleet mode) must be given"
            )
        if socket_path is None and tcp_address is None:
            raise ValueError("the daemon needs a socket_path, a tcp_address, or both")
        self.pipeline = pipeline
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.annotator_config = annotator_config or AnnotatorConfig()
        self.annotator = (
            ProjectAnnotator(pipeline, self.annotator_config) if pipeline is not None else None
        )
        self._pool = worker_pool
        if tcp_address is not None:
            kind, target = parse_address(tcp_address)
            if kind != "tcp":
                raise ValueError(f"tcp_address must be HOST:PORT, got {tcp_address!r}")
            self.tcp_address: Optional[tuple] = target
        else:
            self.tcp_address = None
        #: The bound TCP port, once :meth:`start` ran (resolves port 0).
        self.tcp_port: Optional[int] = None
        self.config = serve_config or ServeConfig()
        self.stats = ServeStats()
        self.faults = fault_injector or FaultInjector()
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._listeners: list[socket.socket] = []
        self._threads: list[threading.Thread] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stats_lock = threading.Lock()
        # Admission control: requests admitted (queued or in flight) right now.
        self._admission_lock = threading.Lock()
        self._admitted = 0
        # EWMA of micro-batch wall time, feeding the retry_after_seconds hint.
        self._batch_seconds: Optional[float] = None
        # Reload lifecycle: set from dispatch, cleared when the swap lands/fails.
        self._reload_lock = threading.Lock()
        self._reloading = threading.Event()
        # What the batcher currently holds, so the restart guard can fail it.
        self._current: list[_Pending] = []
        # Fleet mode: micro-batches handed to dispatcher threads and not yet
        # finished; exclusives (adapt / reload) quiesce on this barrier.
        self._inflight_cond = threading.Condition()
        self._inflight = 0

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def state(self) -> str:
        """The daemon's lifecycle state, as reported by ``ping``."""
        if self._stop.is_set():
            return "draining"
        if self._reloading.is_set():
            return "reloading"
        with self._admission_lock:
            if self._admitted >= self.config.max_queue_depth:
                return "overloaded"
        return "ready"

    def start(self) -> "AnnotationServer":
        """Bind the socket(s), start the workers and the acceptor/batcher threads."""
        if self._listeners:
            return self
        if self._pool is not None:
            self._pool.start()
            self._executor = ThreadPoolExecutor(
                max_workers=self._pool.num_workers, thread_name_prefix="serve-dispatch"
            )
        if self.socket_path is not None:
            self._reclaim_stale_socket()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self.socket_path))
            listener.listen(64)
            # Closing a socket does not wake a thread blocked in accept() on
            # Linux; a short timeout lets the acceptor poll the stop flag.
            listener.settimeout(0.25)
            self._listeners.append(listener)
        if self.tcp_address is not None:
            host, port = self.tcp_address
            tcp_listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            tcp_listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            tcp_listener.bind((host, port))
            tcp_listener.listen(64)
            tcp_listener.settimeout(0.25)
            self.tcp_port = tcp_listener.getsockname()[1]
            self._listeners.append(tcp_listener)
        thread = threading.Thread(target=self._batcher_main, name="serve-batcher", daemon=True)
        thread.start()
        self._threads.append(thread)
        for position, listener in enumerate(self._listeners):
            thread = threading.Thread(
                target=self._accept_loop, args=(listener,), name=f"serve-acceptor-{position}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`shutdown`) arrives."""
        self.start()
        self._stop.wait()
        self.close()

    def shutdown(self) -> None:
        """Stop accepting, drain the queue sentinel and remove the socket."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._queue.put(None)  # unblocks the batcher
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self.socket_path is not None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    def close(self) -> None:
        """Shut down, join the threads and stop the worker fleet."""
        self.shutdown()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
        # A wire-initiated shutdown runs on a connection-handler thread that
        # is not joined above; finish its cleanup so the socket file is
        # guaranteed gone once close() returns.
        if self.socket_path is not None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    def _reclaim_stale_socket(self) -> None:
        """Unlink a leftover socket file, but refuse to evict a live daemon."""
        assert self.socket_path is not None
        if not self.socket_path.exists():
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.25)
            probe.connect(str(self.socket_path))
        except OSError:
            self.socket_path.unlink()  # stale: nothing is listening
        else:
            raise RuntimeError(f"another daemon is already serving on {self.socket_path}")
        finally:
            probe.close()

    # -- connection handling -----------------------------------------------------------

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed during shutdown
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,), name="serve-conn", daemon=True
            )
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while not self._stop.is_set():
                try:
                    request = recv_frame(connection, max_frame_bytes=self.config.max_frame_bytes)
                except ProtocolError as error:
                    self._count(errors=1)
                    self._try_send(connection, {"ok": False, "error": str(error), "error_kind": "protocol"})
                    return
                if request is None:
                    return
                response = self._dispatch(request)
                if not self._try_send(connection, response):
                    return
                if request.get("op") == "shutdown":
                    self.shutdown()
                    return

    def _try_send(self, connection: socket.socket, payload: dict) -> bool:
        try:
            try:
                self.faults.fire("torn_frame", {"payload": payload})
            except InjectedFault:
                # Emulate a torn write: part of the length header, then drop
                # the connection — what a crash mid-sendall looks like to the
                # peer.  The client must surface a clean ProtocolError.
                connection.sendall(b"\x00\x00")
                return False
            send_frame(connection, payload, max_frame_bytes=self.config.max_frame_bytes)
            return True
        except (OSError, ProtocolError):
            return False

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                if name == "largest_batch":  # high-water mark, not a sum
                    self.stats.largest_batch = max(self.stats.largest_batch, delta)
                else:
                    setattr(self.stats, name, getattr(self.stats, name) + delta)

    # -- request dispatch --------------------------------------------------------------

    def _describe_space(self) -> dict:
        """Pipeline facts for ``ping``/``stats`` — local space or fleet cache."""
        if self._pool is not None:
            return self._pool.describe()
        space = self.pipeline.type_space
        return {
            "markers": len(space),
            "dim": space.dim,
            "approximate_index": space.approximate_index,
            "index_kind": space.index_kind,
            "dtype": str(space.dtype),
        }

    def _dispatch(self, request: dict) -> dict:
        self._count(requests=1)
        op = request.get("op")
        if op == "ping":
            with self._admission_lock:
                depth = self._admitted
            return {
                "ok": True,
                "state": self.state,
                **self._describe_space(),
                "queue_depth": depth,
                "queue_capacity": self.config.max_queue_depth,
            }
        if op == "stats":
            with self._stats_lock:
                summary = self.stats.summary()
            summary.update(ok=True, state=self.state, markers=self._describe_space()["markers"])
            if self._pool is not None:
                # Satellite fix: `stats` reflects the fleet, not just the
                # front-end — per-worker batches/restarts plus the totals.
                summary["workers"] = self._pool.worker_stats()
                summary["worker_restarts"] = self._pool.restarts_total()
            return summary
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        if op == "annotate":
            sources = self._validated_sources(request)
            if sources is None:
                self._count(errors=1)
                return self._bad_request("'sources' must map filenames to source text")
            deadline, problem = self._deadline_from(request)
            if problem is not None:
                self._count(errors=1)
                return self._bad_request(problem)
            self._count(annotate_requests=1)
            return self._admit_and_wait(_PendingAnnotate(sources, deadline))
        if op == "adapt":
            sources = self._validated_sources(request)
            type_name = request.get("type_name")
            if sources is None or not isinstance(type_name, str) or not type_name:
                self._count(errors=1)
                return self._bad_request("'adapt' needs a 'type_name' string and a 'sources' map")
            deadline, problem = self._deadline_from(request)
            if problem is not None:
                self._count(errors=1)
                return self._bad_request(problem)
            self._count(adapt_requests=1)
            return self._admit_and_wait(_PendingAdapt(type_name, sources, deadline))
        if op == "reload":
            return self._dispatch_reload(request)
        self._count(errors=1)
        return self._bad_request(f"unknown op {op!r}")

    @staticmethod
    def _bad_request(message: str) -> dict:
        return {"ok": False, "error": message, "error_kind": "bad_request"}

    def _deadline_from(self, request: dict) -> tuple[Optional[float], Optional[str]]:
        """Absolute deadline for a request, from its wire ``timeout_seconds``."""
        timeout = request.get("timeout_seconds", self.config.default_timeout_seconds)
        if timeout is None:
            return None, None
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            return None, "'timeout_seconds' must be a number"
        return time.monotonic() + max(0.0, float(timeout)), None

    def _retry_after_hint(self, depth: int) -> float:
        """How long a shed client should wait before retrying.

        Estimates the time to drain the current queue: batches ahead of a
        fresh request times the observed per-batch wall time (EWMA), floored
        by the batching window so a cold daemon still hints something useful.
        """
        with self._stats_lock:
            per_batch = self._batch_seconds
        if per_batch is None:
            per_batch = max(self.config.batch_window_seconds, 0.05)
        batches_ahead = max(1, math.ceil(depth / self.config.max_batch_requests))
        return round(min(30.0, max(0.05, batches_ahead * per_batch)), 3)

    def _admit_and_wait(self, pending: _Pending) -> dict:
        if self._stop.is_set():
            return {"ok": False, "error": "daemon is stopping", "error_kind": "stopping"}
        with self._admission_lock:
            if self._admitted >= self.config.max_queue_depth:
                depth = self._admitted
                self._count(shed_requests=1)
                return {
                    "ok": False,
                    "error": f"overloaded: {depth} requests already admitted "
                             f"(capacity {self.config.max_queue_depth}); retry later",
                    "error_kind": "overloaded",
                    "retry_after_seconds": self._retry_after_hint(depth),
                }
            self._admitted += 1
        try:
            self._queue.put(pending)
            return self._await(pending)
        finally:
            with self._admission_lock:
                self._admitted -= 1

    def _await(self, pending: _Pending) -> dict:
        # A shutdown can race past the admission check and beat this request
        # into the queue: the batcher may consume its sentinel and exit
        # without ever seeing the item.  The batcher guard drains and fails
        # leftovers, so this poll is a backstop, not the primary mechanism.
        while not pending.done.wait(timeout=0.5):
            if self._stop.is_set() and not pending.done.wait(timeout=5.0):
                pending.fail("daemon is stopping", kind="stopping")
                break
        assert pending.result is not None
        return pending.result

    @staticmethod
    def _validated_sources(request: dict) -> Optional[dict[str, str]]:
        sources = request.get("sources")
        if not isinstance(sources, dict):
            return None
        if any(not isinstance(key, str) or not isinstance(value, str) for key, value in sources.items()):
            return None
        return sources

    # -- hot reload --------------------------------------------------------------------

    def _dispatch_reload(self, request: dict) -> dict:
        model_dir = request.get("model_dir")
        if not isinstance(model_dir, str) or not model_dir:
            self._count(errors=1)
            return self._bad_request("'reload' needs a 'model_dir' string")
        with self._reload_lock:
            if self._reloading.is_set():
                self._count(errors=1)
                return {"ok": False, "error": "a reload is already in progress", "error_kind": "reload"}
            self._reloading.set()
        pending = _PendingReload(model_dir)
        if self._pool is not None:
            # Fleet reload is a quiesced two-phase broadcast: it rides the
            # queue directly and runs on the batcher once dispatches drain.
            self._queue.put(pending)
        else:
            threading.Thread(
                target=self._load_for_reload, args=(pending,), name="serve-reloader", daemon=True
            ).start()
        return self._await(pending)

    def _load_for_reload(self, pending: _PendingReload) -> None:
        """Load the new pipeline off the batcher thread, then queue the swap.

        In-flight micro-batches keep running on the old pipeline while the
        load happens here; only the *swap* rides the queue, so it lands
        atomically between batches.
        """
        try:
            self.faults.fire("reload", {"model_dir": pending.model_dir})
            pending.pipeline = TypilusPipeline.load(pending.model_dir)
        except Exception as error:  # noqa: BLE001 - a bad model dir must not kill the daemon
            self._count(errors=1, failed_reloads=1)
            self._reloading.clear()
            pending.fail(f"reload failed: {error}", kind="reload")
            return
        self._queue.put(pending)

    def _run_reload_swap(self, pending: _PendingReload) -> None:
        """Atomically swap the pipeline between micro-batches (batcher thread)."""
        assert pending.pipeline is not None
        previous_markers = len(self.pipeline.type_space)
        self.pipeline = pending.pipeline
        self.annotator = ProjectAnnotator(pending.pipeline, self.annotator_config)
        self._reloading.clear()
        self._count(reloads=1)
        pending.result = {
            "ok": True,
            "markers": len(pending.pipeline.type_space),
            "previous_markers": previous_markers,
            "state": self.state,
        }
        pending.done.set()

    def _run_reload_fleet(self, pending: _PendingReload) -> None:
        """Two-phase reload across the worker fleet (batcher thread, quiesced).

        Every worker prepares the new pipeline before any worker commits it
        — the cross-process form of the ``pipeline.json``-last commit
        marker.  A prepare failure anywhere aborts everywhere: the old
        pipeline keeps serving and the request fails cleanly.
        """
        assert self._pool is not None
        self._quiesce()
        try:
            self.faults.fire("reload", {"model_dir": pending.model_dir})
            markers, previous_markers = self._pool.broadcast_reload(pending.model_dir)
        except Exception as error:  # noqa: BLE001 - a bad model dir must not kill the daemon
            self._count(errors=1, failed_reloads=1)
            self._reloading.clear()
            pending.fail(f"reload failed: {error}", kind="reload")
            return
        self._reloading.clear()
        self._count(reloads=1)
        pending.result = {
            "ok": True,
            "markers": markers,
            "previous_markers": previous_markers,
            "state": self.state,
        }
        pending.done.set()

    # -- the batcher -------------------------------------------------------------------

    def _batcher_main(self) -> None:
        """Run the batch loop, restarting it if it ever dies.

        A batcher crash used to hang every waiting client; now the guard
        fails the crashed batch and everything queued behind it fast, bumps
        ``batcher_restarts`` and enters a fresh loop — the daemon keeps
        serving.
        """
        while True:
            try:
                self._batch_loop()
            except BaseException as error:  # noqa: BLE001 - the guard must survive anything
                if not self._stop.is_set():
                    self._count(batcher_restarts=1)
                    reason = f"annotation batcher crashed ({error}); request aborted"
                    self._fail_current(reason, kind="crashed")
                    self._drain_queue_failing(reason, kind="crashed")
                    continue  # restart the batcher
                self._fail_current("daemon is stopping", kind="stopping")
            self._drain_queue_failing("daemon is stopping", kind="stopping")
            return

    def _fail_current(self, message: str, kind: str) -> None:
        for item in self._current:
            self._fail_item(item, message, kind)
        self._current = []

    def _drain_queue_failing(self, message: str, kind: str) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                self._fail_item(item, message, kind)

    def _fail_item(self, item: _Pending, message: str, kind: str) -> None:
        if item.done.is_set():
            return
        if isinstance(item, _PendingReload):
            # A reload whose swap never landed must release the lifecycle
            # flag, or the daemon would report "reloading" forever.
            self._reloading.clear()
        item.fail(message, kind=kind)

    def _batch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            self._current = [item]
            self.faults.fire("batcher", {"op": type(item).__name__})
            if isinstance(item, _PendingAnnotate):
                state = self._collect_batch(item)
                self._current = list(state.batch) + ([state.carry] if state.carry else [])
                if self._pool is not None:
                    # Fleet mode: hand the collected micro-batch to a
                    # dispatcher thread and keep collecting — up to
                    # num_workers batches run concurrently across workers.
                    self._current = [state.carry] if state.carry else []
                    self._submit_batch(state.batch)
                else:
                    self._run_annotate_batch(state.batch)
                if state.carry is not None:
                    self._run_exclusive(state.carry)
                self._current = []
                if state.stopping:
                    return
            else:
                self._run_exclusive(item)
                self._current = []

    # -- fleet dispatch ----------------------------------------------------------------

    def _submit_batch(self, batch: list[_PendingAnnotate]) -> None:
        """Hand one micro-batch to the dispatcher pool (fleet mode only)."""
        assert self._executor is not None
        with self._inflight_cond:
            self._inflight += 1
        try:
            self._executor.submit(self._pool_batch_main, batch)
        except BaseException:  # pragma: no cover - submit fails only at shutdown
            self._finish_inflight()
            for pending in batch:
                self._fail_item(pending, "daemon is stopping", kind="stopping")

    def _pool_batch_main(self, batch: list[_PendingAnnotate]) -> None:
        """Dispatcher-thread body: run one micro-batch against a worker."""
        try:
            self._run_annotate_batch(batch)
        except BaseException as error:  # noqa: BLE001 - a dispatcher must never die silently
            for pending in batch:
                self._fail_item(pending, f"dispatch failed: {error}", kind="crashed")
        finally:
            self._finish_inflight()

    def _finish_inflight(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _quiesce(self, timeout: float = 120.0) -> None:
        """Wait until no micro-batch is in flight on any dispatcher thread.

        Exclusives (adapt, reload) mutate state that every worker must agree
        on; running them against a quiesced fleet is what keeps the barrier
        semantics of the single-process daemon — no batch ever straddles a
        type-map change.
        """
        with self._inflight_cond:
            self._inflight_cond.wait_for(lambda: self._inflight == 0, timeout=timeout)

    def _run_exclusive(self, item: _Pending) -> None:
        """Run a queue item that must not share a batch (adapt / reload swap)."""
        if isinstance(item, _PendingAdapt):
            self._run_adapt(item)
        elif isinstance(item, _PendingReload):
            if self._pool is not None:
                self._run_reload_fleet(item)
            else:
                self._run_reload_swap(item)
        else:  # pragma: no cover - defensive: unknown items fail, never hang
            self._fail_item(item, f"unhandled queue item {type(item).__name__}", kind="internal")

    def _collect_batch(self, first: _PendingAnnotate) -> _BatchPlanState:
        """Drain compatible requests for one micro-batch.

        An ``adapt`` or reload swap ends the drain (it must observe the
        queue order: annotations enqueued before it run first, ones after it
        see the new state), as does the shutdown sentinel.
        """
        state = _BatchPlanState(batch=[first])
        deadline = time.monotonic() + self.config.batch_window_seconds
        while len(state.batch) < self.config.max_batch_requests:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                state.stopping = True
                break
            if not isinstance(item, _PendingAnnotate):
                state.carry = item
                break
            state.batch.append(item)
        return state

    def _drop_expired(self, batch: list[_PendingAnnotate]) -> list[_PendingAnnotate]:
        """Fail already-expired requests before spending an embedding pass."""
        now = time.monotonic()
        live: list[_PendingAnnotate] = []
        for pending in batch:
            if pending.expired(now):
                self._count(expired_requests=1)
                pending.fail(
                    "deadline expired before the batch ran; the request was dropped unprocessed",
                    kind="expired",
                )
            else:
                live.append(pending)
        return live

    def _run_annotate_batch(self, batch: list[_PendingAnnotate]) -> None:
        self.faults.fire("slow_batch", {"batch_size": len(batch)})
        live = self._drop_expired(batch)
        if not live:
            return
        self._count(
            micro_batches=1,
            largest_batch=len(live),
            coalesced_requests=len(live) if len(live) > 1 else 0,
        )
        started = time.monotonic()
        self._annotate_isolating(live)
        elapsed = time.monotonic() - started
        with self._stats_lock:
            self._batch_seconds = (
                elapsed if self._batch_seconds is None else 0.8 * self._batch_seconds + 0.2 * elapsed
            )

    def _annotate_merged(self, merged: dict[str, str], filenames: list[str]) -> dict:
        """Run one merged source map through the annotation backend.

        Returns the backend-neutral shape ``{"files": [[namespaced_name,
        [suggestion payloads]], ...], "skipped": [...], "reused_files": n}``
        — exactly what a fleet worker sends over the wire and what the
        in-process annotator's report converts to, so the two backends are
        byte-identical from here on.  The ``annotator`` fault point fires in
        both modes (an injected error there bisects, same as an organic
        engine failure); a worker crash raises :class:`WorkerCrashed`.
        """
        self.faults.fire("annotator", {"filenames": filenames})
        if self._pool is not None:
            handle = self._pool.lease()
            try:
                reply = self._pool.annotate(handle, merged)
            finally:
                self._pool.release(handle)
            return reply
        report = self.annotator.annotate_sources(merged)
        return {
            "files": [
                [
                    file_report.filename,
                    [suggestion_to_payload(suggestion) for suggestion in file_report.suggestions],
                ]
                for file_report in report.files
            ],
            "skipped": list(report.skipped_files),
            "reused_files": report.reused_files,
        }

    def _annotate_isolating(self, batch: list[_PendingAnnotate]) -> None:
        """Annotate a batch; on failure, bisect so poison fails alone.

        A single bad request used to fail every neighbor that happened to
        share its micro-batch.  Now a failing merged call is split in half
        and each half re-run; the recursion bottoms out with the poison
        request(s) failing individually while every healthy neighbor gets
        the same answer an un-coalesced run would have produced (each re-run
        half goes through the identical engine path).  A worker *crash* is
        the exception: its batch fails fast as one unit (``crashed``), never
        bisected — re-running a batch that killed a process against more
        workers would amplify the damage, and the pool has already restarted
        the victim.
        """
        merged: dict[str, str] = {}
        for ordinal, pending in enumerate(batch):
            for filename, source in pending.sources.items():
                merged[f"{ordinal}{_NAMESPACE}{filename}"] = source
        try:
            reply = self._annotate_merged(
                merged, [name for pending in batch for name in pending.sources]
            )
        except WorkerCrashed as error:
            self._count(errors=len(batch))
            for pending in batch:
                pending.fail(f"annotation worker crashed: {error}", kind="crashed")
            return
        except Exception as error:  # noqa: BLE001 - a bad request must not kill the daemon
            if len(batch) == 1:
                self._count(errors=1, poison_requests=1)
                batch[0].fail(f"annotation failed: {error}", kind="annotation")
                return
            mid = len(batch) // 2
            self._annotate_isolating(batch[:mid])
            self._annotate_isolating(batch[mid:])
            return
        files_by_request: list[list] = [[] for _ in batch]
        for namespaced, payloads in reply["files"]:
            ordinal, _, filename = namespaced.partition(_NAMESPACE)
            files_by_request[int(ordinal)].append([filename, payloads])
        skipped_by_request: list[list[str]] = [[] for _ in batch]
        for namespaced in reply["skipped"]:
            ordinal, _, filename = namespaced.partition(_NAMESPACE)
            skipped_by_request[int(ordinal)].append(filename)
        for ordinal, pending in enumerate(batch):
            pending.result = {
                "ok": True,
                "files": files_by_request[ordinal],
                "skipped": skipped_by_request[ordinal],
                "batch_size": len(batch),
                "batch_reused_files": reply["reused_files"],
            }
            pending.done.set()

    def _run_adapt(self, pending: _PendingAdapt) -> None:
        if pending.expired(time.monotonic()):
            self._count(expired_requests=1)
            pending.fail(
                "deadline expired before the adaptation ran; the request was dropped unprocessed",
                kind="expired",
            )
            return
        try:
            if self._pool is not None:
                # Fleet adapt: quiesce the dispatchers, then broadcast to
                # every worker behind the pool's all-or-nothing barrier — no
                # two workers ever answer from different type maps.
                self._quiesce()
                added, markers = self._pool.broadcast_adapt(pending.type_name, pending.sources)
            else:
                added = self.pipeline.adapt_with_sources(
                    pending.type_name, pending.sources, provenance="serve:adapt"
                )
                markers = len(self.pipeline.type_space)
        except Exception as error:  # noqa: BLE001 - a bad request must not kill the daemon
            self._count(errors=1)
            pending.fail(f"adaptation failed: {error}", kind="adaptation")
            return
        pending.result = {
            "ok": True,
            "added_markers": added,
            "markers": markers,
        }
        pending.done.set()
