"""Entry point for annotation worker processes (spawned by ``WorkerPool``).

A separate module from :mod:`repro.serve.workers` so that ``python -m``
does not re-execute a module the ``repro.serve`` package already imported
(which triggers a runpy double-import warning in every worker).
"""

import sys

from repro.serve.workers import main

if __name__ == "__main__":
    sys.exit(main())
