"""Wire protocol of the annotation service: length-prefixed JSON frames.

The daemon and its clients exchange single JSON documents over a local
stream socket.  Each frame is a 4-byte big-endian payload length followed by
that many bytes of UTF-8 JSON — trivial to parse incrementally, impossible
to mis-split on newlines inside source code, and safe against a hostile or
corrupt peer: the length prefix is validated *before* any payload buffer is
allocated, so a frame that claims to be larger than ``max_frame_bytes``
(or whose header is garbage — e.g. negative when read as a signed 32-bit
integer) raises :class:`ProtocolError` instead of allocating an
attacker-controlled amount of memory, and a truncated payload raises
instead of wedging the connection.

The same frame format runs over both transports the daemon listens on — a
Unix stream socket (the single-process default) and TCP (the fleet
front-end).  :func:`parse_address` classifies an endpoint string as one or
the other, so clients and the CLI accept either interchangeably.
"""

from __future__ import annotations

import json
import socket
import struct
from pathlib import Path
from typing import Optional, Tuple, Union

#: Default upper bound on a single frame; a whole project's sources fit
#: comfortably, a corrupted length prefix does not allocate gigabytes.
#: Callers (e.g. the daemon via ``ServeConfig.max_frame_bytes``) can pass a
#: tighter ``max_frame_bytes`` to :func:`recv_frame` / :func:`send_frame`.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Lengths with the sign bit set are negative when read as an int32 — no
#: well-behaved peer sends them, so they are rejected as garbage outright
#: (independently of the configured cap).
_SIGN_BIT = 1 << 31


class ProtocolError(RuntimeError):
    """A malformed frame (bad length, truncated payload or invalid JSON)."""


#: Anything :func:`parse_address` understands: a Unix socket path, a
#: ``host:port`` / ``tcp://host:port`` string, or a ``(host, port)`` tuple.
ServeAddress = Union[str, Path, Tuple[str, int]]


def parse_address(address: ServeAddress) -> tuple[str, Union[str, tuple[str, int]]]:
    """Classify a serving endpoint as Unix-socket or TCP.

    Returns ``("unix", path_string)`` or ``("tcp", (host, port))``.  The
    rules are unambiguous rather than clever:

    * a :class:`~pathlib.Path` or ``(host, port)`` tuple is taken at face
      value;
    * ``tcp://host:port`` and ``unix://path`` force a transport explicitly;
    * a bare string counts as TCP only when it looks like nothing else —
      ``host:port`` with a purely numeric port and no path separator (a Unix
      socket path containing ``/`` always stays a path, even with colons).
    """
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (str(host), int(port))
    if isinstance(address, Path):
        return "unix", str(address)
    text = str(address)
    if text.startswith("tcp://"):
        host, _, port = text[len("tcp://"):].rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"malformed TCP address {text!r}: expected tcp://HOST:PORT")
        return "tcp", (host, int(port))
    if text.startswith("unix://"):
        return "unix", text[len("unix://"):]
    host, separator, port = text.rpartition(":")
    if separator and host and "/" not in text and port.isdigit():
        return "tcp", (host, int(port))
    return "unix", text


def format_address(address: ServeAddress) -> str:
    """A human-readable ``unix://…`` / ``tcp://…`` rendering of an endpoint."""
    kind, target = parse_address(address)
    if kind == "tcp":
        host, port = target
        return f"tcp://{host}:{port}"
    return f"unix://{target}"


def connect_address(address: ServeAddress, timeout: Optional[float] = None) -> socket.socket:
    """Open a client socket of the right family and connect it.

    The caller owns the returned socket; connect failures propagate (the
    client's retry policy treats them as transient).
    """
    kind, target = parse_address(address)
    family = socket.AF_INET if kind == "tcp" else socket.AF_UNIX
    connection = socket.socket(family, socket.SOCK_STREAM)
    try:
        if timeout is not None:
            connection.settimeout(timeout)
        connection.connect(target)
    except BaseException:
        connection.close()
        raise
    return connection


def send_frame(sock: socket.socket, payload: dict, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Serialise ``payload`` and write one length-prefixed frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > max_frame_bytes:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the {max_frame_bytes} byte cap")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def _recv_exactly(sock: socket.socket, num_bytes: int) -> Optional[bytes]:
    """Read exactly ``num_bytes``; ``None`` on clean EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = num_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(f"connection closed mid-frame ({remaining} bytes missing)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame; ``None`` when the peer closed the connection cleanly.

    The length prefix is validated before the payload buffer is read: frames
    above ``max_frame_bytes`` and garbage headers (negative as an int32) are
    rejected with :class:`ProtocolError` without allocating their claimed
    size.
    """
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length >= _SIGN_BIT:
        raise ProtocolError(
            f"garbage frame length {length:#010x} (negative as a signed 32-bit integer)"
        )
    if length > max_frame_bytes:
        raise ProtocolError(f"frame length {length} exceeds the {max_frame_bytes} byte cap")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed between frame header and payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid frame payload: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame payload must be a JSON object, got {type(payload).__name__}")
    return payload
