"""Long-lived annotation serving: daemon, client, wire protocol and faults.

Where :mod:`repro.engine` annotates one project per process,
:mod:`repro.serve` keeps a trained pipeline resident:
:class:`AnnotationServer` loads it once, listens on a local Unix socket and
coalesces concurrent annotation requests into micro-batches through the
engine's batched suggestion path (identical answers, shared embedding
passes), while the incrementally-extendable TypeSpace lets ``adapt``
requests grow the open type vocabulary between batches without a rebuild.

The failure modes are engineered, not accidental: bounded admission with
``overloaded`` sheds and ``retry_after_seconds`` hints, per-request
deadlines propagated on the wire, poison-request isolation by batch
bisection, a self-restarting batcher, and hot pipeline reload that swaps
atomically between micro-batches.  :class:`AnnotationClient` is the
matching client (same report objects as the in-process engine) with an
optional :class:`RetryPolicy`; :class:`FaultInjector` provides the named
failure points the chaos suite uses to prove every degradation path
deterministically.

For multi-core serving, :class:`WorkerPool` turns the daemon into a fleet
front-end: N annotation worker processes each memory-map the same saved
model (the marker matrix occupies physical memory once), micro-batches
dispatch round-robin across them, and ``adapt``/``reload`` broadcast behind
a quiesce barrier so no two workers ever answer from different type maps.
The front-end listens on TCP and/or the Unix socket; the single-process
Unix-socket daemon remains the default.
"""

from repro.serve.client import AnnotationClient, RetryPolicy, ServeError
from repro.serve.faults import FAULT_POINTS, FaultInjector, InjectedFault
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.serve.server import LIFECYCLE_STATES, AnnotationServer, ServeConfig, ServeStats
from repro.serve.workers import WorkerCrashed, WorkerError, WorkerPool

__all__ = [
    "AnnotationClient",
    "AnnotationServer",
    "FAULT_POINTS",
    "FaultInjector",
    "InjectedFault",
    "LIFECYCLE_STATES",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RetryPolicy",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "format_address",
    "parse_address",
    "recv_frame",
    "send_frame",
]
