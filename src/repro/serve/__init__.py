"""Long-lived annotation serving: daemon, client and wire protocol.

Where :mod:`repro.engine` annotates one project per process,
:mod:`repro.serve` keeps a trained pipeline resident:
:class:`AnnotationServer` loads it once, listens on a local Unix socket and
coalesces concurrent annotation requests into micro-batches through the
engine's batched suggestion path (identical answers, shared embedding
passes), while the incrementally-extendable TypeSpace lets ``adapt``
requests grow the open type vocabulary between batches without a rebuild.
:class:`AnnotationClient` is the matching client; it returns the same
report objects as the in-process engine.
"""

from repro.serve.client import AnnotationClient, ServeError
from repro.serve.protocol import MAX_FRAME_BYTES, ProtocolError, recv_frame, send_frame
from repro.serve.server import AnnotationServer, ServeConfig, ServeStats

__all__ = [
    "AnnotationClient",
    "AnnotationServer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "recv_frame",
    "send_frame",
]
