"""Annotation worker processes and the front-end pool that drives them.

The fleet tier splits the daemon in two:

* the **front-end** (:class:`~repro.serve.server.AnnotationServer`) keeps
  everything request-shaped — admission control, deadlines, micro-batching,
  poison bisection — but no pipeline;
* N **worker processes** each run :meth:`TypilusPipeline.load` on the *same*
  saved model directory and answer merged micro-batches over a private Unix
  control socket (the same length-prefixed JSON frames as the public wire).

Workers load the model themselves rather than inheriting it by fork: with
the raw typespace layout the marker matrix is adopted as a read-only
``np.memmap``, so every worker maps the same ``embeddings.npy`` pages and a
million-marker map occupies physical memory **once**, however many workers
serve it.  Per-worker *private* RSS stays flat as the map grows — the
benchmarks assert this rather than assume it.

Consistency discipline (the two correctness hinges):

* ``adapt`` broadcasts to every worker behind the batcher's quiesce barrier;
  if any worker fails or diverges, **all** workers are restarted at the
  pre-adapt state (fresh load + replay of the adapt log) — no two workers
  ever answer from different type maps.  The log replays onto restarted
  workers, so a crash never loses adaptations.
* ``reload`` is two-phase, reusing the ``pipeline.json``-last commit-marker
  discipline: every worker *prepares* (loads the new directory next to the
  live pipeline) and only when all have prepared does the pool *commit* the
  swap everywhere; any prepare failure aborts everywhere and the old
  pipeline keeps serving.

Crash handling reuses the batcher-restart-guard pattern: a worker that dies
mid-dispatch costs exactly its in-flight batch (failed fast with
``error_kind="crashed"``, never bisected — re-running halves on a dead
process isolates nothing) and is respawned immediately, with per-worker
restart counters surfacing in the ``stats`` op.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.serve.faults import FaultInjector, InjectedFault
from repro.serve.protocol import ProtocolError, recv_frame, send_frame

#: How long the pool waits for a freshly spawned worker to connect and greet;
#: covers the model load, which happens before the greeting.
SPAWN_TIMEOUT_SECONDS = 120.0

#: How long a quiesced broadcast waits to check out every idle worker.
CHECKOUT_TIMEOUT_SECONDS = 60.0


class WorkerCrashed(RuntimeError):
    """A worker process died (or was killed) while handling a dispatch.

    Deliberately distinct from an annotation error: the server fails the
    affected batch fast instead of bisecting it, and the pool has already
    begun restarting the worker by the time this propagates.
    """

    def __init__(self, message: str, worker_id: int = -1) -> None:
        super().__init__(message)
        self.worker_id = worker_id


class WorkerError(RuntimeError):
    """A worker answered a dispatch with an application-level error reply."""


class _WorkerHandle:
    """One live worker process: its Popen, control connection and counters."""

    def __init__(self, worker_id: int, process: subprocess.Popen, connection: socket.socket) -> None:
        self.worker_id = worker_id
        self.process = process
        self.connection = connection
        self.info: dict = {}
        self.alive = True

    @property
    def pid(self) -> int:
        return self.process.pid

    def request(self, payload: dict) -> dict:
        """One synchronous request/reply exchange on the control connection."""
        send_frame(self.connection, payload)
        reply = recv_frame(self.connection)
        if reply is None:
            raise ProtocolError(f"worker {self.worker_id} closed its control connection mid-request")
        return reply

    def destroy(self) -> None:
        """Close the connection and make sure the process is gone."""
        self.alive = False
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if self.process.poll() is None:
            self.process.kill()
        try:
            self.process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill cannot hang on POSIX
            pass


def _annotator_config_payload(config) -> dict:
    """An :class:`AnnotatorConfig` as the JSON blob workers rebuild it from."""
    return {
        "use_type_checker": config.use_type_checker,
        "checker_mode": config.checker_mode.value,
        "confidence_threshold": config.confidence_threshold,
        "include_annotated": config.include_annotated,
        "disagreement_threshold": config.disagreement_threshold,
        "jobs": config.jobs,
        "cache_dir": str(config.cache_dir) if config.cache_dir is not None else None,
    }


class WorkerPool:
    """Spawns, health-checks and restarts N annotation worker processes.

    The pool owns a private Unix control listener; each spawned worker
    connects back, greets with a ``hello`` frame describing its loaded
    pipeline (marker count, dim, index kind, whether the matrix is
    memory-mapped), and then answers dispatches one frame at a time.  The
    server leases a worker per merged annotation call (:meth:`lease` /
    :meth:`release`) and runs ``adapt``/``reload`` as quiesced broadcasts.
    """

    def __init__(
        self,
        model_dir: Union[str, Path],
        num_workers: int,
        annotator_config=None,
        fault_injector: Optional[FaultInjector] = None,
        mmap_typespace: Optional[bool] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self.model_dir = Path(model_dir)
        self.num_workers = num_workers
        self.faults = fault_injector or FaultInjector()
        self._mmap_typespace = mmap_typespace
        if annotator_config is None:
            from repro.engine.annotator import AnnotatorConfig

            annotator_config = AnnotatorConfig()
        self.annotator_config = annotator_config
        self._lock = threading.Lock()  # workers list, stats, describe cache
        self._spawn_lock = threading.Lock()  # serializes spawn+accept pairs
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._workers: list[_WorkerHandle] = []
        self._stats: dict[int, dict] = {}
        self._describe: dict = {}
        self._adapt_log: list[tuple[str, dict[str, str]]] = []
        self._listener: Optional[socket.socket] = None
        self._control_dir: Optional[str] = None
        self._closed = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX platforms
            raise RuntimeError("the worker pool requires AF_UNIX control sockets")
        self._control_dir = tempfile.mkdtemp(prefix="repro-pool-")
        control_path = os.path.join(self._control_dir, "control.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(control_path)
        listener.listen(self.num_workers + 4)
        listener.settimeout(0.5)
        self._listener = listener
        self._control_path = control_path
        self._started = True
        try:
            for worker_id in range(self.num_workers):
                self._stats[worker_id] = {"batches": 0, "adapts": 0, "restarts": 0}
                handle = self._spawn(worker_id)
                with self._lock:
                    self._workers.append(handle)
                self._idle.put(handle)
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Stop every worker (politely, then firmly) and drop the listener."""
        self._closed = True
        with self._lock:
            workers = list(self._workers)
        for handle in workers:
            if handle.alive:
                try:
                    handle.connection.settimeout(5.0)
                    handle.request({"op": "stop"})
                except (OSError, ProtocolError):
                    pass
            handle.destroy()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self._control_dir is not None:
            try:
                os.unlink(self._control_path)
                os.rmdir(self._control_dir)
            except OSError:
                pass
            self._control_dir = None

    # -- spawning ----------------------------------------------------------------------

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        """Start one worker process and wait for its greeting."""
        with self._spawn_lock:
            config_payload = _annotator_config_payload(self.annotator_config)
            if config_payload["cache_dir"] is not None:
                # Each worker gets a private incremental-cache subtree so two
                # processes never race on the same cache files.
                config_payload["cache_dir"] = str(
                    Path(config_payload["cache_dir"]) / f"worker-{worker_id}"
                )
            config_payload["mmap_typespace"] = self._mmap_typespace
            command = [
                sys.executable,
                "-m",
                "repro.serve._workermain",
                "--connect",
                self._control_path,
                "--worker-id",
                str(worker_id),
                "--model-dir",
                str(self.model_dir),
                "--config",
                json.dumps(config_payload),
            ]
            env = dict(os.environ)
            # The subprocess must import `repro` even when the package is run
            # from a source tree rather than installed.
            package_root = str(Path(__file__).resolve().parents[2])
            existing = env.get("PYTHONPATH", "")
            if package_root not in existing.split(os.pathsep):
                env["PYTHONPATH"] = (
                    package_root + (os.pathsep + existing if existing else "")
                )
            process = subprocess.Popen(command, env=env)
            connection = self._accept_from(process, worker_id)
        try:
            hello = recv_frame(connection)
        except ProtocolError as error:
            process.kill()
            raise RuntimeError(f"worker {worker_id} sent a malformed greeting: {error}") from error
        if hello is None or hello.get("op") != "hello":
            process.kill()
            raise RuntimeError(f"worker {worker_id} never greeted the pool")
        handle = _WorkerHandle(worker_id, process, connection)
        handle.info = {key: value for key, value in hello.items() if key != "op"}
        with self._lock:
            if not self._describe:
                self._describe = {
                    key: hello[key]
                    for key in ("markers", "dim", "approximate_index", "index_kind", "dtype")
                    if key in hello
                }
        try:
            self._replay_adapt_log(handle)
        except Exception:
            handle.destroy()
            raise
        return handle

    def _accept_from(self, process: subprocess.Popen, worker_id: int) -> socket.socket:
        assert self._listener is not None
        deadline = time.monotonic() + SPAWN_TIMEOUT_SECONDS
        while True:
            if process.poll() is not None:
                raise RuntimeError(
                    f"worker {worker_id} exited with code {process.returncode} before connecting"
                )
            try:
                connection, _ = self._listener.accept()
                return connection
            except socket.timeout:
                if time.monotonic() >= deadline:
                    process.kill()
                    raise RuntimeError(
                        f"worker {worker_id} did not connect within {SPAWN_TIMEOUT_SECONDS:.0f}s"
                    ) from None
            except OSError as error:
                raise RuntimeError(f"worker control listener failed: {error}") from error

    def _replay_adapt_log(self, handle: _WorkerHandle) -> None:
        """Bring a (re)spawned worker up to the fleet's adapted type map."""
        for type_name, sources in self._adapt_log:
            reply = handle.request({"op": "adapt", "type_name": type_name, "sources": sources})
            if not reply.get("ok"):
                raise RuntimeError(
                    f"worker {handle.worker_id} failed to replay adaptation of {type_name!r}: "
                    f"{reply.get('error')}"
                )
            handle.info["markers"] = reply.get("markers", handle.info.get("markers"))

    def _respawn(self, worker_id: int) -> Optional[_WorkerHandle]:
        """Replace a dead worker; returns the new handle (idle) or None."""
        if self._closed:
            return None
        try:
            handle = self._spawn(worker_id)
        except Exception:
            return None
        with self._lock:
            self._workers = [w for w in self._workers if w.worker_id != worker_id] + [handle]
            self._stats[worker_id]["restarts"] += 1
        self._idle.put(handle)
        return handle

    # -- leasing and dispatch ----------------------------------------------------------

    def lease(self, timeout: Optional[float] = None) -> _WorkerHandle:
        """Check out an idle worker, blocking until one frees up.

        Raises :class:`WorkerCrashed` when the pool is closed or every
        worker is dead — the caller fails its batch fast instead of hanging.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._closed:
                raise WorkerCrashed("worker pool is closed")
            with self._lock:
                if not any(worker.alive for worker in self._workers):
                    raise WorkerCrashed("no annotation workers alive")
            try:
                handle = self._idle.get(timeout=0.25)
            except queue.Empty:
                if deadline is not None and time.monotonic() >= deadline:
                    raise WorkerCrashed("timed out waiting for an idle annotation worker") from None
                continue
            if handle.alive:
                return handle

    def release(self, handle: _WorkerHandle) -> None:
        """Return a leased worker to the idle set (dead handles are dropped)."""
        if handle.alive and not self._closed:
            self._idle.put(handle)

    def annotate(self, handle: _WorkerHandle, sources: dict[str, str]) -> dict:
        """Run one merged annotation call on a leased worker.

        Returns the worker's payload (``files`` / ``skipped`` /
        ``reused_files``).  An application error raises :class:`WorkerError`
        (the server bisects); a dead worker raises :class:`WorkerCrashed`
        after a replacement has been spawned (the server fails the batch
        fast).  The ``worker`` fault point fires here and its error arm is a
        deterministic crash: the process is really killed first, so recovery
        exercises the organic path.
        """
        try:
            self.faults.fire("worker", {"worker": handle.worker_id, "filenames": list(sources)})
        except InjectedFault as fault:
            handle.process.kill()
            raise self._crashed(handle, fault) from fault
        try:
            reply = handle.request({"op": "annotate", "sources": sources})
        except (OSError, ProtocolError) as error:
            raise self._crashed(handle, error) from error
        if not reply.get("ok"):
            raise WorkerError(str(reply.get("error", "worker annotation failed")))
        with self._lock:
            self._stats[handle.worker_id]["batches"] += 1
        return reply

    def _crashed(self, handle: _WorkerHandle, cause: BaseException) -> WorkerCrashed:
        """Retire a dead worker, start its replacement, build the exception."""
        handle.destroy()
        self._respawn(handle.worker_id)
        return WorkerCrashed(
            f"annotation worker {handle.worker_id} crashed ({cause}); request aborted",
            worker_id=handle.worker_id,
        )

    # -- quiesced broadcasts -----------------------------------------------------------

    def _checkout_all(self) -> list[_WorkerHandle]:
        """Check out every live worker (the server has quiesced dispatches)."""
        deadline = time.monotonic() + CHECKOUT_TIMEOUT_SECONDS
        handles: list[_WorkerHandle] = []
        while True:
            with self._lock:
                expected = sum(1 for worker in self._workers if worker.alive)
            if expected == 0:
                raise WorkerCrashed("no annotation workers alive")
            if len(handles) >= expected:
                return handles
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for handle in handles:
                    self.release(handle)
                raise WorkerCrashed("timed out collecting idle workers for a broadcast")
            try:
                handle = self._idle.get(timeout=min(0.25, remaining))
            except queue.Empty:
                continue
            if handle.alive:
                handles.append(handle)

    def broadcast_adapt(self, type_name: str, sources: dict[str, str]) -> tuple[int, int]:
        """Adapt every worker's type map behind the quiesce barrier.

        All-or-nothing: on any failure or marker-count divergence, every
        worker is restarted at the pre-adapt state (the adapt log does not
        gain the failed entry), so the fleet never serves from mixed maps.
        Returns ``(added_markers, markers)`` on success.
        """
        handles = self._checkout_all()
        sources = dict(sources)
        results: list[dict] = []
        failures: list[str] = []
        crashed: list[_WorkerHandle] = []
        for handle in handles:
            try:
                reply = handle.request({"op": "adapt", "type_name": type_name, "sources": sources})
            except (OSError, ProtocolError) as error:
                failures.append(f"worker {handle.worker_id} crashed ({error})")
                crashed.append(handle)
                continue
            if reply.get("ok"):
                results.append(reply)
            else:
                failures.append(f"worker {handle.worker_id}: {reply.get('error')}")
        marker_counts = {int(reply["markers"]) for reply in results}
        if failures or len(marker_counts) != 1:
            if not failures:  # divergence without an error: restart everyone
                failures.append(f"marker counts diverged across workers: {sorted(marker_counts)}")
            self._restart_all(handles)
            raise WorkerError(
                "; ".join(failures) + " — all workers restarted at the pre-adapt state"
            )
        self._adapt_log.append((type_name, sources))
        markers = marker_counts.pop()
        added = int(results[0].get("added_markers", 0))
        with self._lock:
            self._describe["markers"] = markers
            for handle in handles:
                handle.info["markers"] = markers
                self._stats[handle.worker_id]["adapts"] += 1
        for handle in handles:
            self.release(handle)
        return added, markers

    def broadcast_reload(self, model_dir: Union[str, Path]) -> tuple[int, int]:
        """Two-phase hot reload across the fleet: prepare everywhere, then commit.

        Phase one asks every worker to load ``model_dir`` *next to* its live
        pipeline; only when all have prepared does phase two commit the swap.
        Any prepare failure aborts the staged pipelines everywhere and the
        old model keeps serving — the same commit-marker discipline as
        ``pipeline.json``-last on disk, applied across processes.  Returns
        ``(markers, previous_markers)``.
        """
        model_dir = str(model_dir)
        handles = self._checkout_all()
        with self._lock:
            previous_markers = int(self._describe.get("markers", 0))
        prepared: list[_WorkerHandle] = []
        failures: list[str] = []
        dead: list[_WorkerHandle] = []
        for handle in handles:
            try:
                reply = handle.request({"op": "reload", "stage": "prepare", "model_dir": model_dir})
            except (OSError, ProtocolError) as error:
                failures.append(f"worker {handle.worker_id} crashed during prepare ({error})")
                dead.append(handle)
                continue
            if reply.get("ok"):
                prepared.append(handle)
            else:
                failures.append(f"worker {handle.worker_id}: {reply.get('error')}")
        if failures:
            for handle in prepared:
                try:
                    handle.request({"op": "reload", "stage": "abort"})
                except (OSError, ProtocolError):
                    dead.append(handle)
            for handle in dead:
                handle.destroy()
                self._respawn(handle.worker_id)
            for handle in handles:
                self.release(handle)
            raise WorkerError("; ".join(failures) + " — reload aborted, old pipeline still serving")
        # Commit point: every worker holds the new pipeline staged.  From here
        # the fleet converges on the new model even across crashes, because
        # the pool's model_dir moves forward first.
        self.model_dir = Path(model_dir)
        self._adapt_log.clear()
        markers = previous_markers
        for handle in handles:
            try:
                reply = handle.request({"op": "reload", "stage": "commit"})
                markers = int(reply.get("markers", markers))
                handle.info["markers"] = markers
            except (OSError, ProtocolError):
                # A crash after the commit point: the respawn loads the new
                # model_dir, so the restarted worker is already consistent.
                handle.destroy()
                self._respawn(handle.worker_id)
                continue
            self.release(handle)
        with self._lock:
            self._describe["markers"] = markers
        return markers, previous_markers

    # -- introspection -----------------------------------------------------------------

    def describe(self) -> dict:
        """Pipeline facts for ``ping``, cached from worker greetings/broadcasts."""
        with self._lock:
            description = dict(self._describe)
            description["workers"] = sum(1 for worker in self._workers if worker.alive)
        return description

    def worker_stats(self) -> list[dict]:
        """Per-worker counters for the ``stats`` op (front-end side, no RPC)."""
        with self._lock:
            by_id = {worker.worker_id: worker for worker in self._workers}
            rows = []
            for worker_id in sorted(self._stats):
                worker = by_id.get(worker_id)
                rows.append(
                    {
                        "id": worker_id,
                        "pid": worker.pid if worker is not None else None,
                        "alive": bool(
                            worker is not None
                            and worker.alive
                            and worker.process.poll() is None
                        ),
                        "markers": worker.info.get("markers") if worker is not None else None,
                        "mmap": worker.info.get("mmap") if worker is not None else None,
                        **self._stats[worker_id],
                    }
                )
            return rows

    def restarts_total(self) -> int:
        with self._lock:
            return sum(stats["restarts"] for stats in self._stats.values())

    def _restart_all(self, handles: list[_WorkerHandle]) -> None:
        """Restart every checked-out worker (consistency recovery path)."""
        for handle in handles:
            handle.destroy()
            self._respawn(handle.worker_id)


# ---------------------------------------------------------------------------
# The worker process: python -m repro.serve._workermain --connect ... --model-dir ...
# ---------------------------------------------------------------------------


def _describe_pipeline(pipeline) -> dict:
    space = pipeline.type_space
    return {
        "markers": len(space),
        "dim": space.dim,
        "approximate_index": space.approximate_index,
        "index_kind": space.index_kind,
        "dtype": str(space.dtype),
        "mmap": space.is_memory_mapped,
        "marker_bytes": space.marker_nbytes,
    }


def _annotator_config_from_payload(payload: dict):
    from repro.checker import CheckerMode
    from repro.engine.annotator import AnnotatorConfig

    return AnnotatorConfig(
        use_type_checker=bool(payload.get("use_type_checker", True)),
        checker_mode=CheckerMode(payload.get("checker_mode", CheckerMode.STRICT.value)),
        confidence_threshold=float(payload.get("confidence_threshold", 0.0)),
        include_annotated=bool(payload.get("include_annotated", True)),
        disagreement_threshold=float(payload.get("disagreement_threshold", 0.8)),
        jobs=payload.get("jobs", 1),
        cache_dir=payload.get("cache_dir"),
    )


def _worker_serve(args) -> int:
    """The worker main loop: load once, answer control frames until stopped."""
    from repro.core.pipeline import TypilusPipeline
    from repro.engine.annotator import ProjectAnnotator, suggestion_to_payload
    from repro.utils.memory import private_rss_bytes

    config_payload = json.loads(args.config) if args.config else {}
    annotator_config = _annotator_config_from_payload(config_payload)
    pipeline = TypilusPipeline.load(
        args.model_dir, mmap_typespace=config_payload.get("mmap_typespace")
    )
    annotator = ProjectAnnotator(pipeline, annotator_config)
    staged: Optional[tuple] = None  # (pipeline, model_dir) awaiting commit

    connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    connection.connect(args.connect)
    send_frame(
        connection,
        {
            "op": "hello",
            "worker_id": args.worker_id,
            "pid": os.getpid(),
            **_describe_pipeline(pipeline),
        },
    )

    def annotate_reply(request: dict) -> dict:
        sources = request.get("sources")
        if not isinstance(sources, dict):
            return {"ok": False, "error": "'sources' must be a map", "error_kind": "bad_request"}
        try:
            report = annotator.annotate_sources(sources)
        except Exception as error:  # noqa: BLE001 - poison must not kill the worker
            return {"ok": False, "error": str(error), "error_kind": "annotation"}
        return {
            "ok": True,
            "files": [
                [file_report.filename, [suggestion_to_payload(s) for s in file_report.suggestions]]
                for file_report in report.files
            ],
            "skipped": list(report.skipped_files),
            "reused_files": report.reused_files,
        }

    while True:
        request = recv_frame(connection)
        if request is None:
            return 0
        op = request.get("op")
        if op == "annotate":
            reply = annotate_reply(request)
        elif op == "adapt":
            try:
                added = pipeline.adapt_with_sources(
                    str(request.get("type_name")), request.get("sources") or {}, provenance="serve:adapt"
                )
                reply = {"ok": True, "added_markers": added, "markers": len(pipeline.type_space)}
            except Exception as error:  # noqa: BLE001
                reply = {"ok": False, "error": str(error), "error_kind": "adaptation"}
        elif op == "reload":
            stage = request.get("stage")
            if stage == "prepare":
                try:
                    model_dir = str(request.get("model_dir"))
                    staged = (
                        TypilusPipeline.load(
                            model_dir, mmap_typespace=config_payload.get("mmap_typespace")
                        ),
                        model_dir,
                    )
                    reply = {"ok": True, "markers": len(staged[0].type_space)}
                except Exception as error:  # noqa: BLE001
                    staged = None
                    reply = {"ok": False, "error": str(error), "error_kind": "reload"}
            elif stage == "commit":
                if staged is None:
                    reply = {"ok": False, "error": "no staged pipeline to commit", "error_kind": "reload"}
                else:
                    pipeline, _ = staged
                    annotator = ProjectAnnotator(pipeline, annotator_config)
                    staged = None
                    reply = {"ok": True, "markers": len(pipeline.type_space)}
            elif stage == "abort":
                staged = None
                reply = {"ok": True}
            else:
                reply = {"ok": False, "error": f"unknown reload stage {stage!r}", "error_kind": "bad_request"}
        elif op == "ping":
            reply = {
                "ok": True,
                "pid": os.getpid(),
                **_describe_pipeline(pipeline),
                "private_rss_bytes": private_rss_bytes(),
            }
        elif op == "stop":
            reply = {"ok": True, "stopping": True}
        else:
            reply = {"ok": False, "error": f"unknown worker op {op!r}", "error_kind": "bad_request"}
        send_frame(connection, reply)
        if op == "stop":
            return 0


def main(argv: Optional[list] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve._workermain",
        description="annotation worker process (spawned by WorkerPool)",
    )
    parser.add_argument("--connect", required=True, help="pool control socket to connect back to")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--model-dir", required=True, help="saved pipeline directory to load")
    parser.add_argument("--config", default="", help="JSON-encoded annotator configuration")
    return _worker_serve(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
