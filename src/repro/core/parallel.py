"""Data-parallel epoch execution over forked worker processes.

``TrainingConfig.workers`` splits every batch's graph groups across N forked
workers.  Each worker assembles and forward-encodes a disjoint slice of the
batch and, after the parent has run the loss, backpropagates its graphs in
isolation — exactly the per-graph gradient decomposition the serial trainer
uses (see :func:`repro.nn.optim.capture_gradients`).  The parent then sums
the per-graph contributions *in graph order*, which is the same association
the serial path applies, so ``workers=N`` replays ``workers=1`` bit-for-bit
in any dtype.

Data flows through shared memory wherever it is dense:

* model parameters are re-homed into ``RawArray``-backed buffers before the
  fork, so the parent's in-place Adam updates are visible to every worker
  without any per-step broadcast;
* forward embeddings, the loss gradient w.r.t. them, and per-graph dense
  parameter contributions travel through preallocated shared buffers sized
  by ``max_symbols_per_batch`` / ``graphs_per_batch``.

Only the sparse row-wise embedding gradients (small, variable-shaped) and
control messages go over the pipes.  The protocol is lock-step per batch —
encode, ack, backward, gradients — so no locks are needed: pipe ordering is
the synchronisation.

Worker processes require ``fork`` (POSIX); where fork is unavailable or
denied the team refuses to start and the trainer falls back to the serial
path, which computes identical numbers.
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.nn.optim import accumulate_gradients, capture_gradients, restore_gradients
from repro.nn.tensor import Tensor


def _shared_view(context, shape: tuple, dtype) -> np.ndarray:
    """A numpy array backed by anonymous shared memory (inherited over fork)."""
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    nbytes = count * np.dtype(dtype).itemsize
    buffer = context.RawArray("b", max(1, nbytes))
    return np.frombuffer(buffer, dtype=dtype, count=count).reshape(shape)


def _rehome_parameters(context, parameters: Sequence[Tensor]) -> None:
    """Move every parameter's storage into shared memory, preserving values.

    Must run before the fork; afterwards the parent's in-place optimiser
    updates (`data -= ...`, `data[rows] -= ...`) are immediately visible in
    every worker.  Gradients stay process-local — only ``data`` is shared.
    """
    for parameter in parameters:
        data = np.ascontiguousarray(parameter.data)
        view = _shared_view(context, data.shape, data.dtype)
        view[...] = data
        parameter.data = view


class _PieceCache:
    """Per-worker cache of assembled single-graph batches.

    Batch memberships are fixed for the run and each graph belongs to exactly
    one batch, so the key ``(graph_index, count)`` is hit once per epoch.
    Unbounded (resident) by default; when the trainer streams with a bounded
    prefetch window the cache becomes an LRU so worker RSS stays O(window)
    instead of O(corpus / workers).
    """

    def __init__(self, plan, samples_by_graph, capacity: Optional[int]) -> None:
        self.plan = plan
        self.samples_by_graph = samples_by_graph
        self.capacity = capacity
        self._pieces: OrderedDict = OrderedDict()

    def piece(self, graph_index: int, count: int):
        key = (graph_index, count)
        cached = self._pieces.get(key)
        if cached is not None:
            self._pieces.move_to_end(key)
            return cached
        group = self.samples_by_graph[graph_index][:count]
        piece = self.plan.graph_pieces([graph_index], [group])[0][3]
        self._pieces[key] = piece
        if self.capacity is not None:
            while len(self._pieces) > self.capacity:
                self._pieces.popitem(last=False)
        return piece


@dataclass
class _WorkerState:
    """Everything a forked worker needs; inherited by fork, never pickled."""

    connection: object
    encoder: object
    parameters: list
    cache: _PieceCache
    embeddings: np.ndarray  # (max_symbols_per_batch, dim) shared, worker-written
    gradients: np.ndarray  # (max_symbols_per_batch, dim) shared, parent-written
    slots: np.ndarray  # (graphs_per_batch, total_dense) shared, worker-written
    offsets: np.ndarray  # flattened start offset of each parameter in a slot row


def _worker_main(state: _WorkerState) -> None:
    connection = state.connection
    tapes: list = []
    try:
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "encode":
                tapes = []
                for position, graph_index, count, row in message[1]:
                    batch = state.cache.piece(graph_index, count)
                    output = state.encoder(batch)
                    rows = output.data.shape[0]
                    state.embeddings[row : row + rows] = output.data
                    tapes.append((position, output, row, rows))
                connection.send(("encoded", None))
            elif kind == "backward":
                payload = []
                for position, output, row, rows in tapes:
                    stash = capture_gradients(state.parameters)
                    output.backward(state.gradients[row : row + rows])
                    contribution = capture_gradients(state.parameters)
                    restore_gradients(state.parameters, stash)
                    dense_slots: list[int] = []
                    sparse: list[tuple] = []
                    for slot, (grad, grad_rows) in enumerate(contribution):
                        if grad is not None:
                            start = int(state.offsets[slot])
                            state.slots[position, start : start + grad.size] = np.ravel(grad)
                            dense_slots.append(slot)
                        if grad_rows:
                            sparse.append((slot, grad_rows))
                    payload.append((position, dense_slots, sparse))
                tapes = []
                connection.send(("grads", payload))
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown worker message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except BaseException:
        try:
            connection.send(("error", traceback.format_exc()))
        except Exception:
            pass


class WorkerTeam:
    """Parent-side handle on the forked data-parallel workers."""

    def __init__(self, processes, connections, embeddings, gradients, slots, offsets, sizes) -> None:
        self._processes = processes
        self._connections = connections
        self.embeddings = embeddings
        self.gradients = gradients
        self.slots = slots
        self.offsets = offsets
        self.sizes = sizes

    @property
    def num_workers(self) -> int:
        return len(self._processes)

    @classmethod
    def start(cls, trainer, plan, split) -> Optional["WorkerTeam"]:
        """Fork the team, or return ``None`` where that is impossible.

        Mirrors the ingest pool's graceful degradation: sandboxes that deny
        ``fork`` (or non-POSIX hosts without it) get the serial path, which
        produces bit-identical results anyway.
        """
        config = trainer.config
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            return None
        parameters = trainer.optimizer.parameters
        dtype = trainer.dtype
        dim = trainer.encoder.output_dim
        try:
            _rehome_parameters(context, parameters)
            embeddings = _shared_view(context, (config.max_symbols_per_batch, dim), dtype)
            gradients = _shared_view(context, (config.max_symbols_per_batch, dim), dtype)
            sizes = np.asarray([int(parameter.data.size) for parameter in parameters], dtype=np.int64)
            offsets = np.zeros(len(parameters) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            slots = _shared_view(context, (config.graphs_per_batch, int(offsets[-1])), dtype)
        except (OSError, PermissionError):
            return None
        samples_by_graph = split.samples_by_graph()
        capacity = None
        if config.prefetch_batches is not None:
            capacity = max(1, config.prefetch_batches * config.graphs_per_batch)
        processes = []
        connections = []
        try:
            for _ in range(config.workers):
                parent_end, child_end = context.Pipe()
                state = _WorkerState(
                    connection=child_end,
                    encoder=trainer.encoder,
                    parameters=parameters,
                    cache=_PieceCache(plan, samples_by_graph, capacity),
                    embeddings=embeddings,
                    gradients=gradients,
                    slots=slots,
                    offsets=offsets,
                )
                process = context.Process(target=_worker_main, args=(state,), daemon=True)
                process.start()
                child_end.close()
                processes.append(process)
                connections.append(parent_end)
        except (OSError, PermissionError):
            for connection in connections:
                connection.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)
            return None
        return cls(processes, connections, embeddings, gradients, slots, offsets, sizes)

    # -- per-batch protocol ------------------------------------------------------------

    def _expect(self, worker: int, kind: str):
        message = self._connections[worker].recv()
        if message[0] == "error":
            raise RuntimeError(f"training worker {worker} failed:\n{message[1]}")
        if message[0] != kind:  # pragma: no cover - defensive
            raise RuntimeError(f"worker {worker} sent {message[0]!r}, expected {kind!r}")
        return message[1]

    def run_batch(self, trainer, graph_indices, samples_per_graph) -> float:
        """One training step with forward/backward fanned out over the team.

        The parent still owns the loss, gradient clipping and the Adam step,
        so the optimiser trajectory is byte-for-byte the serial one — the
        workers only supply the per-graph forward activations and isolated
        gradient contributions, reduced here in graph order.
        """
        nonempty = [
            (position, graph_indices[position], group)
            for position, group in enumerate(samples_per_graph)
            if group
        ]
        assignments: list[list] = [[] for _ in self._connections]
        order: list[tuple[int, int, int]] = []  # (position, row, count) in graph order
        row = 0
        for index, (position, graph_index, group) in enumerate(nonempty):
            count = len(group)
            assignments[index % len(assignments)].append((position, graph_index, count, row))
            order.append((position, row, count))
            row += count
        total = row
        active = [worker for worker, assigned in enumerate(assignments) if assigned]
        for worker in active:
            self._connections[worker].send(("encode", assignments[worker]))
        for worker in active:
            self._expect(worker, "encoded")

        embeddings = Tensor(np.array(self.embeddings[:total]), requires_grad=True)
        loss = trainer._loss_for_batch(embeddings, trainer._ordered_types(samples_per_graph))
        trainer.optimizer.zero_grad()
        loss.backward()

        if embeddings._grad is not None and total:
            self.gradients[:total] = embeddings._grad
            for worker in active:
                self._connections[worker].send(("backward", None))
            contributions: dict[int, tuple] = {}
            for worker in active:
                for position, dense_slots, sparse in self._expect(worker, "grads"):
                    contributions[position] = (dense_slots, sparse)
            parameters = trainer.optimizer.parameters
            for position, _, _ in order:
                dense_slots, sparse = contributions[position]
                merged: list[list] = [[None, None] for _ in parameters]
                for slot in dense_slots:
                    start = int(self.offsets[slot])
                    size = int(self.sizes[slot])
                    flat = np.array(self.slots[position, start : start + size])
                    merged[slot][0] = flat.reshape(parameters[slot].data.shape)
                for slot, grad_rows in sparse:
                    merged[slot][1] = grad_rows
                accumulate_gradients(parameters, [tuple(entry) for entry in merged])
        trainer.optimizer.clip_gradients(trainer.config.gradient_clip)
        trainer.optimizer.step()
        return float(loss.data)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process, connection in zip(self._processes, self._connections):
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
            connection.close()
        self._processes = []
        self._connections = []
