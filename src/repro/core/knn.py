"""Nearest-neighbour indexes over the TypeSpace (L1 distance).

The paper uses Annoy, an approximate nearest-neighbour library, to keep kNN
queries fast.  Three indexes are provided here with the same interface:

* :class:`ExactL1Index` — brute-force search, exact, the default at our
  corpus scale and the oracle every approximate index is verified against;
* :class:`RandomProjectionIndex` — an Annoy-style approximate index that
  hashes points into buckets with random hyperplanes and searches only the
  query's bucket neighbourhood.  It trades a little recall for sub-linear
  query time and is benchmarked against the exact index;
* :class:`~repro.core.ivf.IVFIndex` — the serving-tier index: a seeded
  k-means coarse quantizer partitions the points into cells, queries probe
  the ``nprobe`` nearest cells for a shortlist and the shortlist is exactly
  re-ranked (optionally after a reduced-precision scan).  Built by
  :func:`build_index` with ``kind="ivf"``.

Both indexes are batch-first: the primitive operation is
:meth:`query_batch_arrays`, which answers *all* queries with vectorized
numpy and returns one :class:`BatchNeighbourResult` of array triples
(indices, distances, counts).  The per-query :meth:`query` and the
list-of-objects :meth:`query_batch` are thin views over that path.

Both indexes are also **incrementally updatable**: :meth:`extend` appends
new points without touching the existing ones — the exact index appends
rows into amortised-growth storage, the approximate index buckets only the
new points — so a long-lived TypeSpace can grow marker by marker at a cost
proportional to the extension, not to the whole index.  An index extended
point by point answers queries identically to one rebuilt from scratch
over the same points.

Storage is dtype-aware: float32 point sets stay float32 end to end
(queries are cast to the *index's* dtype, never silently up to float64),
while float64 and integer inputs keep the historical float64 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Protocol

import numpy as np

from repro.utils.rng import SeededRNG

try:  # scipy's C implementation is ~6× faster; fall back to pure numpy without it
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _cdist = None


def resolve_point_dtype(points: np.ndarray, dtype: Optional[np.dtype] = None) -> np.dtype:
    """The storage dtype for a point set: float32 stays float32, else float64."""
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"index dtype must be float32 or float64, got {dtype}")
        return dtype
    if np.asarray(points).dtype == np.float32:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


#: Cap on the number of elements of the per-block ``(queries × points)``
#: distance/scratch matrices :func:`l1_distance_matrix` allocates at once
#: (mirrors :data:`repro.nn.functional.PAIRWISE_CHUNK_ELEMENTS`).
L1_CHUNK_ELEMENTS = 4_194_304


def l1_distance_matrix(
    queries: np.ndarray, points: np.ndarray, max_elements: int = L1_CHUNK_ELEMENTS
) -> np.ndarray:
    """All-pairs L1 distances as a ``(num_queries, num_points)`` matrix.

    The result dtype follows the operands: float32 inputs produce float32
    distances (scipy's ``cdist`` always returns float64, so the float32 path
    uses the numpy accumulation instead of paying an up-cast copy).

    When the ``(num_queries, num_points)`` block would exceed ``max_elements``
    the queries are processed in chunks, bounding the peak working set (the
    per-dimension scratch matrix and scipy's internal block) at one chunk
    while the chunks fill one preallocated result — the distances are
    identical with any cap.
    """
    num_queries, num_points = len(queries), len(points)
    result_dtype = np.result_type(queries.dtype, points.dtype)
    if num_queries * num_points <= max_elements or num_queries <= 1:
        return _l1_distance_block(queries, points, result_dtype)
    distances = np.empty((num_queries, num_points), dtype=result_dtype)
    chunk_size = max(1, max_elements // max(num_points, 1))
    for start in range(0, num_queries, chunk_size):
        stop = start + chunk_size
        distances[start:stop] = _l1_distance_block(queries[start:stop], points, result_dtype)
    return distances


def _l1_distance_block(queries: np.ndarray, points: np.ndarray, result_dtype: np.dtype) -> np.ndarray:
    """One unchunked all-pairs L1 block (see :func:`l1_distance_matrix`)."""
    if _cdist is not None and result_dtype == np.float64:
        return _cdist(queries, points, "cityblock")
    # Accumulate per dimension with in-place ops on contiguous columns: this
    # keeps the working set at one (queries × points) matrix instead of the
    # (queries × points × dim) broadcast temporary.
    queries_t = np.ascontiguousarray(queries.T)
    points_t = np.ascontiguousarray(points.T)
    distances = np.zeros((len(queries), len(points)), dtype=result_dtype)
    scratch = np.empty_like(distances)
    for dim in range(queries_t.shape[0]):
        np.subtract.outer(queries_t[dim], points_t[dim], out=scratch)
        np.abs(scratch, out=scratch)
        distances += scratch
    return distances


@dataclass
class NeighbourResult:
    """Indices and distances of the ``k`` nearest markers for one query."""

    indices: np.ndarray
    distances: np.ndarray


@dataclass
class BatchNeighbourResult:
    """Neighbours of a whole query batch as dense arrays.

    ``indices`` is ``(num_queries, k)`` int64 and ``distances`` the matching
    float array (the index's storage dtype), both sorted by increasing
    distance per row.  Every column of every row is a valid neighbour:
    non-empty indexes answer with exactly ``min(k, len(index))`` columns, and
    an empty index answers with zero-width ``(num_queries, 0)`` arrays —
    there is no padding.  ``counts`` is that per-row column count (``0`` only
    for empty indexes).
    """

    indices: np.ndarray
    distances: np.ndarray
    counts: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)

    def row(self, position: int) -> NeighbourResult:
        count = int(self.counts[position])
        return NeighbourResult(self.indices[position, :count], self.distances[position, :count])

    def to_list(self) -> list[NeighbourResult]:
        return [self.row(position) for position in range(len(self))]


def _empty_batch(num_queries: int, dtype: np.dtype = np.dtype(np.float64)) -> BatchNeighbourResult:
    return BatchNeighbourResult(
        indices=np.zeros((num_queries, 0), dtype=np.int64),
        distances=np.zeros((num_queries, 0), dtype=dtype),
        counts=np.zeros(num_queries, dtype=np.int64),
    )


def _as_query_matrix(vectors: np.ndarray, dtype: np.dtype) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=dtype)
    if vectors.ndim == 1:
        vectors = vectors.reshape(1, -1)
    if vectors.ndim != 2:
        raise ValueError("queries must be a vector or a (num_queries, dim) matrix")
    return vectors


def _top_k_rows(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized per-row top-k: positions into ``distances`` plus sorted distances."""
    nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
    partitioned = np.take_along_axis(distances, nearest, axis=1)
    order = np.argsort(partitioned, axis=1, kind="stable")
    return np.take_along_axis(nearest, order, axis=1), np.take_along_axis(partitioned, order, axis=1)


class NearestNeighbourIndex(Protocol):
    """Interface shared by the exact and the approximate index."""

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:  # pragma: no cover - typing
        ...

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:  # pragma: no cover
        ...

    def query_batch_arrays(self, vectors: np.ndarray, k: int) -> BatchNeighbourResult:  # pragma: no cover
        ...

    def extend(self, points: np.ndarray) -> None:  # pragma: no cover - typing
        ...

    def __len__(self) -> int:  # pragma: no cover - typing
        ...


class ExactL1Index:
    """Brute-force exact k-nearest-neighbour search under the L1 distance.

    Rows live in amortised-growth storage: :meth:`extend` appends new points
    in O(new rows) (amortised) instead of forcing callers to rebuild, which
    is what makes marker-by-marker TypeSpace adaptation cheap.
    """

    def __init__(self, points: np.ndarray, dtype: Optional[np.dtype] = None) -> None:
        points = np.asarray(points)
        if points.ndim != 2:
            raise ValueError("points must be a (num_points, dim) array")
        self.dtype = resolve_point_dtype(points, dtype)
        self._storage = np.asarray(points, dtype=self.dtype)
        self._size = len(points)

    @property
    def points(self) -> np.ndarray:
        return self._storage[: self._size]

    def __len__(self) -> int:
        return self._size

    def extend(self, points: np.ndarray) -> None:
        """Append rows to the index without touching the existing ones."""
        points = np.asarray(points, dtype=self.dtype)
        if points.ndim != 2 or points.shape[1] != self._storage.shape[1]:
            raise ValueError(
                f"extension must be a (num_points, {self._storage.shape[1]}) array, "
                f"got shape {points.shape}"
            )
        if not len(points):
            return
        needed = self._size + len(points)
        if needed > len(self._storage):
            capacity = max(needed, 2 * len(self._storage), 16)
            storage = np.empty((capacity, self._storage.shape[1]), dtype=self.dtype)
            storage[: self._size] = self._storage[: self._size]
            self._storage = storage
        self._storage[self._size : needed] = points
        self._size = needed

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:
        return self.query_batch_arrays(vector, k).row(0)

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:
        return self.query_batch_arrays(vectors, k).to_list()

    def query_batch_arrays(self, vectors: np.ndarray, k: int) -> BatchNeighbourResult:
        vectors = _as_query_matrix(vectors, self.dtype)
        if self._size == 0:
            return _empty_batch(len(vectors), self.dtype)
        points = self.points
        k = min(k, self._size)
        all_indices = np.empty((len(vectors), k), dtype=np.int64)
        all_distances = np.empty((len(vectors), k), dtype=self.dtype)
        # Chunk the queries to bound the (queries × points) distance matrix.
        chunk_size = max(1, 4_000_000 // max(self._size, 1))
        for start in range(0, len(vectors), chunk_size):
            chunk = vectors[start : start + chunk_size]
            distances = l1_distance_matrix(chunk, points)
            positions, sorted_distances = _top_k_rows(distances, k)
            all_indices[start : start + len(chunk)] = positions
            all_distances[start : start + len(chunk)] = sorted_distances
        counts = np.full(len(vectors), k, dtype=np.int64)
        return BatchNeighbourResult(all_indices, all_distances, counts)


class RandomProjectionIndex:
    """Annoy-style approximate index: random hyperplane bucketing + local search.

    Points are assigned a signature of ``num_bits`` sign bits from random
    projections; a query searches its own bucket plus all buckets within a
    Hamming distance of ``probe_radius``.  When the probed buckets hold fewer
    than ``k`` points the search falls back to the exact index, so recall
    degrades gracefully rather than returning short results.

    Batched queries compute every signature in one matrix product and group
    the query rows by signature, so the candidate set of each bucket
    neighbourhood is gathered and scored once per bucket instead of once per
    query.

    :meth:`extend` re-buckets only the new points: their signatures are
    computed with the same (seeded) hyperplanes and appended to the affected
    buckets, so extending is O(new points), and an index grown by extension
    answers queries identically to one built from scratch over the same
    point set.
    """

    def __init__(
        self,
        points: np.ndarray,
        num_bits: int = 8,
        probe_radius: int = 1,
        seed: int = 0,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if not isinstance(num_bits, (int, np.integer)) or num_bits < 1 or num_bits > 62:
            raise ValueError(f"num_bits must be an integer in [1, 62], got {num_bits!r}")
        if not isinstance(probe_radius, (int, np.integer)) or probe_radius < 0:
            raise ValueError(f"probe_radius must be a non-negative integer, got {probe_radius!r}")
        if probe_radius > num_bits:
            raise ValueError(
                f"probe_radius {probe_radius} cannot exceed num_bits {num_bits} "
                "(there are no buckets beyond Hamming distance num_bits)"
            )
        self.num_bits = int(num_bits)
        self.probe_radius = int(probe_radius)
        self.seed = int(seed)
        self._exact = ExactL1Index(np.asarray(points), dtype=dtype)
        self.dtype = self._exact.dtype
        # The hyperplanes are created lazily on the first non-empty point set,
        # so an index constructed empty and later extended hashes points
        # exactly as one constructed full (the RNG stream depends only on the
        # seed, the plane shape only on the point dimension).
        self._planes: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._bit_weights = (1 << np.arange(self.num_bits - 1, -1, -1)).astype(np.int64)
        self._buckets: dict[int, np.ndarray] = {}
        self._candidate_cache: dict[int, np.ndarray] = {}
        if len(self._exact):
            self._bucket_points(0)

    @property
    def points(self) -> np.ndarray:
        return self._exact.points

    def __len__(self) -> int:
        return len(self._exact)

    def extend(self, points: np.ndarray) -> None:
        """Append points, re-bucketing only the extension."""
        old_size = len(self._exact)
        self._exact.extend(points)
        if len(self._exact) > old_size:
            self._bucket_points(old_size)

    def _ensure_planes(self, dim: int) -> None:
        if self._planes is None:
            rng = SeededRNG(self.seed)
            self._planes = rng.np.normal(0.0, 1.0, size=(self.num_bits, dim))
            self._offsets = np.zeros(self.num_bits)

    def _bucket_points(self, start: int) -> None:
        """Assign buckets for the stored points from ``start`` onward."""
        points = self._exact.points
        self._ensure_planes(points.shape[1])
        signatures = self._signatures_for(points[start:])
        order = np.argsort(signatures, kind="stable")
        unique, starts = np.unique(signatures[order], return_index=True)
        for position, signature in enumerate(unique):
            stop = starts[position + 1] if position + 1 < len(starts) else len(order)
            # New point indices are all larger than the existing bucket
            # members, so appending the (sorted) extension keeps every bucket
            # sorted — identical to a from-scratch build over all points.
            members = np.sort(order[starts[position] : stop]) + start
            existing = self._buckets.get(int(signature))
            if existing is None:
                self._buckets[int(signature)] = members
            else:
                self._buckets[int(signature)] = np.concatenate([existing, members])
        # Memoised candidate neighbourhoods reference the old bucket contents.
        self._candidate_cache.clear()

    def _signatures_for(self, vectors: np.ndarray) -> np.ndarray:
        """Sign-bit signatures for a whole matrix of vectors, as packed int64."""
        assert self._planes is not None and self._offsets is not None
        bits = (vectors @ self._planes.T + self._offsets) > 0
        return bits.astype(np.int64) @ self._bit_weights

    def _signature(self, vector: np.ndarray) -> int:
        return int(self._signatures_for(np.asarray(vector, dtype=self.dtype).reshape(1, -1))[0])

    def _probe_signatures(self, signature: int) -> list[int]:
        """All signatures within Hamming distance ``probe_radius``, any radius."""
        signatures = [signature]
        for radius in range(1, self.probe_radius + 1):
            for flipped_bits in combinations(range(self.num_bits), radius):
                mask = 0
                for bit in flipped_bits:
                    mask |= 1 << bit
                signatures.append(signature ^ mask)
        return signatures

    #: Cap on memoised candidate neighbourhoods: a long-lived serving index
    #: sees unboundedly many distinct query signatures, and each entry can
    #: approach len(points) int64s, so stop caching once the map is full.
    _MAX_CANDIDATE_CACHE = 4096

    def _candidates_for(self, signature: int) -> np.ndarray:
        """Union of the point indices in the probed bucket neighbourhood."""
        cached = self._candidate_cache.get(signature)
        if cached is None:
            buckets = []
            total = 0
            for probe in self._probe_signatures(signature):
                bucket = self._buckets.get(probe)
                if bucket is not None:
                    buckets.append(bucket)
                    total += len(bucket)
            if total:
                # Copy every probed bucket into one preallocated buffer and
                # dedupe/sort with a single np.unique pass.  Buckets are
                # disjoint and the probe signatures distinct, so unique only
                # sorts — byte-identical to concatenate+sort, without the
                # intermediate per-bucket concatenation arrays.
                buffer = np.empty(total, dtype=np.int64)
                offset = 0
                for bucket in buckets:
                    buffer[offset : offset + len(bucket)] = bucket
                    offset += len(bucket)
                cached = np.unique(buffer)
            else:
                cached = np.zeros(0, dtype=np.int64)
            if len(self._candidate_cache) < self._MAX_CANDIDATE_CACHE:
                self._candidate_cache[signature] = cached
        return cached

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:
        return self.query_batch_arrays(vector, k).row(0)

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:
        return self.query_batch_arrays(vectors, k).to_list()

    def query_batch_arrays(self, vectors: np.ndarray, k: int) -> BatchNeighbourResult:
        vectors = _as_query_matrix(vectors, self.dtype)
        if len(self._exact) == 0:
            return _empty_batch(len(vectors), self.dtype)
        points = self.points
        k = min(k, len(points))
        all_indices = np.empty((len(vectors), k), dtype=np.int64)
        all_distances = np.empty((len(vectors), k), dtype=self.dtype)
        signatures = self._signatures_for(vectors)
        # Group query rows by signature in one O(N log N) pass: stable argsort
        # puts equal signatures adjacent, np.unique marks the group starts.
        order = np.argsort(signatures, kind="stable")
        unique_signatures, starts = np.unique(signatures[order], return_index=True)
        fallback_groups: list[np.ndarray] = []
        for position, signature in enumerate(unique_signatures):
            stop = starts[position + 1] if position + 1 < len(starts) else len(order)
            rows = order[starts[position] : stop]
            candidates = self._candidates_for(int(signature))
            if len(candidates) < k:
                fallback_groups.append(rows)
                continue
            distances = l1_distance_matrix(vectors[rows], points[candidates])
            positions, sorted_distances = _top_k_rows(distances, k)
            all_indices[rows] = candidates[positions]
            all_distances[rows] = sorted_distances
        if fallback_groups:
            rows = np.concatenate(fallback_groups)
            exact = self._exact.query_batch_arrays(vectors[rows], k)
            all_indices[rows] = exact.indices
            all_distances[rows] = exact.distances
        counts = np.full(len(vectors), k, dtype=np.int64)
        return BatchNeighbourResult(all_indices, all_distances, counts)


#: The index kinds :func:`build_index` can construct.
INDEX_KINDS = ("exact", "lsh", "ivf")


def build_index(
    points: np.ndarray,
    approximate: bool = False,
    dtype: Optional[np.dtype] = None,
    kind: Optional[str] = None,
    **kwargs,
) -> NearestNeighbourIndex:
    """Factory mirroring the paper's use of a spatial index over the TypeSpace.

    ``kind`` selects the index: ``"exact"`` (brute-force L1 oracle), ``"lsh"``
    (:class:`RandomProjectionIndex`) or ``"ivf"``
    (:class:`~repro.core.ivf.IVFIndex`).  The legacy ``approximate`` boolean
    maps to ``"lsh"``/``"exact"`` and is only consulted when ``kind`` is not
    given.  Extra keyword arguments are passed to the index constructor, which
    validates them; an unknown ``kind`` is rejected up front instead of
    silently falling back to the exact scan.
    """
    if kind is None:
        kind = "lsh" if approximate else "exact"
    if kind == "exact":
        if kwargs:
            raise TypeError(
                f"the exact index takes no parameters, got {sorted(kwargs)} "
                "(did you mean kind='lsh' or kind='ivf'?)"
            )
        return ExactL1Index(points, dtype=dtype)
    if kind == "lsh":
        return RandomProjectionIndex(points, dtype=dtype, **kwargs)
    if kind == "ivf":
        from repro.core.ivf import IVFIndex  # deferred: ivf imports this module

        return IVFIndex(points, dtype=dtype, **kwargs)
    raise ValueError(
        f"unknown index kind {kind!r}: valid kinds are {', '.join(INDEX_KINDS)}"
    )


def validate_index_params(kind: Optional[str], dim: int, dtype: Optional[np.dtype] = None, **kwargs) -> None:
    """Validate an index kind + parameter set without building a real index.

    Runs the same constructor-time checks the indexes apply (a dry build over
    a zero-point set), so a misconfigured ``TypeSpace(index_kind=...)`` fails
    at construction, not at the first query.
    """
    build_index(np.zeros((0, max(dim, 1))), dtype=dtype, kind=kind, **kwargs)
