"""Nearest-neighbour indexes over the TypeSpace (L1 distance).

The paper uses Annoy, an approximate nearest-neighbour library, to keep kNN
queries fast.  Two indexes are provided here with the same interface:

* :class:`ExactL1Index` — brute-force search, exact, the default at our
  corpus scale;
* :class:`RandomProjectionIndex` — an Annoy-style approximate index that
  hashes points into buckets with random hyperplanes and searches only the
  query's bucket neighbourhood.  It trades a little recall for sub-linear
  query time and is benchmarked against the exact index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.utils.rng import SeededRNG


@dataclass
class NeighbourResult:
    """Indices and distances of the ``k`` nearest markers for one query."""

    indices: np.ndarray
    distances: np.ndarray


class NearestNeighbourIndex(Protocol):
    """Interface shared by the exact and the approximate index."""

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:  # pragma: no cover - typing
        ...

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:  # pragma: no cover
        ...

    def __len__(self) -> int:  # pragma: no cover - typing
        ...


class ExactL1Index:
    """Brute-force exact k-nearest-neighbour search under the L1 distance."""

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be a (num_points, dim) array")
        self.points = points

    def __len__(self) -> int:
        return len(self.points)

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        return self.query_batch(vector, k)[0]

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:
        vectors = np.asarray(vectors, dtype=np.float64)
        if len(self.points) == 0:
            empty = NeighbourResult(np.zeros(0, dtype=np.int64), np.zeros(0))
            return [empty for _ in range(len(vectors))]
        k = min(k, len(self.points))
        results = []
        # Chunk the queries to bound the (queries × points) distance matrix.
        chunk_size = max(1, 4_000_000 // max(len(self.points), 1))
        for start in range(0, len(vectors), chunk_size):
            chunk = vectors[start : start + chunk_size]
            distances = np.abs(chunk[:, None, :] - self.points[None, :, :]).sum(axis=2)
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            for row in range(chunk.shape[0]):
                indices = nearest[row]
                row_distances = distances[row, indices]
                order = np.argsort(row_distances, kind="stable")
                results.append(NeighbourResult(indices[order], row_distances[order]))
        return results


class RandomProjectionIndex:
    """Annoy-style approximate index: random hyperplane bucketing + local search.

    Points are assigned a signature of ``num_bits`` sign bits from random
    projections; a query searches its own bucket plus all buckets within a
    Hamming distance of ``probe_radius``.  When the probed buckets hold fewer
    than ``k`` points the search falls back to the exact index, so recall
    degrades gracefully rather than returning short results.
    """

    def __init__(
        self,
        points: np.ndarray,
        num_bits: int = 8,
        probe_radius: int = 1,
        seed: int = 0,
    ) -> None:
        self.points = np.asarray(points, dtype=np.float64)
        self.num_bits = num_bits
        self.probe_radius = probe_radius
        rng = SeededRNG(seed)
        dim = self.points.shape[1] if self.points.size else 1
        self._planes = rng.np.normal(0.0, 1.0, size=(num_bits, dim))
        self._offsets = np.zeros(num_bits)
        self._buckets: dict[int, list[int]] = {}
        for index, point in enumerate(self.points):
            self._buckets.setdefault(self._signature(point), []).append(index)
        self._exact = ExactL1Index(self.points) if self.points.size else None

    def __len__(self) -> int:
        return len(self.points)

    def _signature(self, vector: np.ndarray) -> int:
        bits = (self._planes @ vector + self._offsets) > 0
        signature = 0
        for bit in bits:
            signature = (signature << 1) | int(bit)
        return signature

    def _probe_signatures(self, signature: int) -> list[int]:
        signatures = [signature]
        if self.probe_radius >= 1:
            signatures.extend(signature ^ (1 << bit) for bit in range(self.num_bits))
        if self.probe_radius >= 2:
            for first in range(self.num_bits):
                for second in range(first + 1, self.num_bits):
                    signatures.append(signature ^ (1 << first) ^ (1 << second))
        return signatures

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if self._exact is None:
            return NeighbourResult(np.zeros(0, dtype=np.int64), np.zeros(0))
        candidate_indices: list[int] = []
        for signature in self._probe_signatures(self._signature(vector)):
            candidate_indices.extend(self._buckets.get(signature, ()))
        if len(candidate_indices) < k:
            return self._exact.query(vector, k)
        candidates = np.asarray(sorted(set(candidate_indices)), dtype=np.int64)
        distances = np.abs(self.points[candidates] - vector[None, :]).sum(axis=1)
        k = min(k, len(candidates))
        nearest = np.argpartition(distances, k - 1)[:k]
        order = np.argsort(distances[nearest], kind="stable")
        chosen = nearest[order]
        return NeighbourResult(candidates[chosen], distances[chosen])

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:
        return [self.query(vector, k) for vector in np.asarray(vectors, dtype=np.float64)]


def build_index(points: np.ndarray, approximate: bool = False, **kwargs) -> NearestNeighbourIndex:
    """Factory mirroring the paper's use of a spatial index over the TypeSpace."""
    if approximate:
        return RandomProjectionIndex(points, **kwargs)
    return ExactL1Index(points)
