"""kNN-based type prediction over the TypeSpace (Eq. 5).

Given a query symbol's type embedding, the predictor finds its ``k`` nearest
markers and converts their distances into a probability distribution

    P(s : τ') = 1/Z · Σ_i  I(τ_i = τ') · d_i^{-p}

where ``p`` acts as an inverse temperature (``p → 0`` gives a uniform vote
among the neighbours; large ``p`` approaches 1-NN).  Figure 6 of the paper
sweeps ``k`` and ``p``; the benchmark harness reproduces that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.typespace import TypeSpace


@dataclass
class TypePrediction:
    """Ranked candidate types for one symbol."""

    candidates: list[tuple[str, float]] = field(default_factory=list)  # (type, probability), sorted desc

    @property
    def top_type(self) -> Optional[str]:
        return self.candidates[0][0] if self.candidates else None

    @property
    def confidence(self) -> float:
        return self.candidates[0][1] if self.candidates else 0.0

    def top(self, n: int) -> list[tuple[str, float]]:
        return self.candidates[:n]

    def probability_of(self, type_name: str) -> float:
        for candidate, probability in self.candidates:
            if candidate == type_name:
                return probability
        return 0.0


class KNNTypePredictor:
    """Distance-weighted k-nearest-neighbour prediction in the TypeSpace."""

    def __init__(self, space: TypeSpace, k: int = 10, p: float = 1.0, epsilon: float = 1e-6) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if p < 0:
            raise ValueError("p must be non-negative")
        self.space = space
        self.k = k
        self.p = p
        self.epsilon = epsilon

    def predict(self, embedding: np.ndarray) -> TypePrediction:
        """Predict a ranked distribution over types for one embedding."""
        neighbours = self.space.nearest(embedding, self.k)
        if not neighbours:
            return TypePrediction()
        scores: dict[str, float] = {}
        for type_name, distance in neighbours:
            weight = (distance + self.epsilon) ** (-self.p) if self.p > 0 else 1.0
            scores[type_name] = scores.get(type_name, 0.0) + weight
        normaliser = sum(scores.values())
        ranked = sorted(
            ((type_name, score / normaliser) for type_name, score in scores.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return TypePrediction(candidates=ranked)

    def predict_batch(self, embeddings: np.ndarray) -> list[TypePrediction]:
        embeddings = np.asarray(embeddings, dtype=np.float64)
        return [self.predict(embedding) for embedding in embeddings]

    def predict_with_threshold(self, embedding: np.ndarray, threshold: float) -> Optional[TypePrediction]:
        """Return the prediction only when its confidence clears ``threshold``.

        This is the knob behind the precision/recall trade-off of Fig. 4 and
        Fig. 7: suppressing low-confidence predictions increases precision at
        the cost of recall.
        """
        prediction = self.predict(embedding)
        if prediction.confidence >= threshold:
            return prediction
        return None


def adapt_space_with_new_type(
    space: TypeSpace,
    type_name: str,
    embeddings: Sequence[np.ndarray],
    source: str = "adaptation",
) -> TypeSpace:
    """One-shot adaptation (Sec. 4.2): add markers for a previously unseen type.

    The encoder is untouched; only the type map grows.  After this call the
    predictor can output ``type_name`` for queries that land near the new
    markers — the paper's "open vocabulary without retraining" property,
    exercised by the adaptation tests and the rare-type benchmarks.
    """
    for embedding in embeddings:
        space.add_marker(type_name, np.asarray(embedding, dtype=np.float64), source=source)
    return space
