"""kNN-based type prediction over the TypeSpace (Eq. 5).

Given a query symbol's type embedding, the predictor finds its ``k`` nearest
markers and converts their distances into a probability distribution

    P(s : τ') = 1/Z · Σ_i  I(τ_i = τ') · d_i^{-p}

where ``p`` acts as an inverse temperature (``p → 0`` gives a uniform vote
among the neighbours; large ``p`` approaches 1-NN).  Figure 6 of the paper
sweeps ``k`` and ``p``; the benchmark harness reproduces that sweep.

Scoring is batch-first: :meth:`KNNTypePredictor.predict_batch` answers every
query with one vectorized nearest-neighbour call and one numpy
scatter-accumulate over ``(query, type)`` pairs — there is no per-query
Python prediction loop.  :meth:`predict` is the single-query view of the
same path.

The neighbour search itself is delegated to the TypeSpace's configured
index (exact scan, LSH buckets or the IVF serving tier — see
:mod:`repro.core.knn` and :mod:`repro.core.ivf`); the predictor's scoring is
index-agnostic, so swapping ``index_kind`` trades recall for speed without
touching the probability model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.typespace import TypeSpace


@dataclass
class TypePrediction:
    """Ranked candidate types for one symbol."""

    candidates: list[tuple[str, float]] = field(default_factory=list)  # (type, probability), sorted desc

    @property
    def top_type(self) -> Optional[str]:
        return self.candidates[0][0] if self.candidates else None

    @property
    def confidence(self) -> float:
        return self.candidates[0][1] if self.candidates else 0.0

    def top(self, n: int) -> list[tuple[str, float]]:
        return self.candidates[:n]

    def probability_of(self, type_name: str) -> float:
        for candidate, probability in self.candidates:
            if candidate == type_name:
                return probability
        return 0.0


class KNNTypePredictor:
    """Distance-weighted k-nearest-neighbour prediction in the TypeSpace."""

    def __init__(self, space: TypeSpace, k: int = 10, p: float = 1.0, epsilon: float = 1e-6) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if p < 0:
            raise ValueError("p must be non-negative")
        self.space = space
        self.k = k
        self.p = p
        self.epsilon = epsilon

    def predict(self, embedding: np.ndarray) -> TypePrediction:
        """Predict a ranked distribution over types for one embedding."""
        embedding = np.asarray(embedding).reshape(1, -1)
        return self.predict_batch(embedding)[0]

    def predict_batch(self, embeddings: np.ndarray) -> list[TypePrediction]:
        """Ranked distributions for every row of ``embeddings`` at once.

        All scoring runs in numpy: one batched index query, one
        scatter-accumulate of distance weights per unique ``(query, type)``
        pair and one lexicographic sort that ranks every query's candidates
        by ``(-probability, type name)`` simultaneously.
        """
        # Queries are handed to the space as-is: the index casts them to its
        # storage dtype once, so float32 spaces never pay a float64 round trip.
        embeddings = np.asarray(embeddings)
        if embeddings.ndim == 1:
            embeddings = embeddings.reshape(1, -1)
        num_queries = len(embeddings)
        if num_queries == 0:
            return []
        neighbours = self.space.nearest_batch(embeddings, self.k)
        num_types = len(neighbours.type_vocabulary)
        if neighbours.type_codes.shape[1] == 0 or num_types == 0:
            return [TypePrediction() for _ in range(num_queries)]

        if self.p > 0:
            weights = (neighbours.distances + self.epsilon) ** (-self.p)
        else:
            weights = np.ones_like(neighbours.distances)
        rows = np.repeat(np.arange(num_queries), neighbours.type_codes.shape[1])
        codes = neighbours.type_codes.ravel()
        flat_weights = weights.ravel()

        # Accumulate the vote of every neighbour into its (query, type) cell.
        keys = rows * num_types + codes
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        scores = np.bincount(inverse, weights=flat_weights)
        entry_rows = unique_keys // num_types
        entry_codes = unique_keys % num_types
        row_totals = np.bincount(entry_rows, weights=scores, minlength=num_queries)
        probabilities = scores / row_totals[entry_rows]

        # Rank all candidates of all queries in one lexsort: by query, then by
        # descending probability, ties broken by type name (alphabetical ranks
        # are cached on the space, not recomputed per call).
        vocabulary = self.space.type_vocabulary_array()
        name_rank = self.space.type_name_ranks()
        order = np.lexsort((name_rank[entry_codes], -probabilities, entry_rows))
        sorted_rows = entry_rows[order]
        sorted_names = vocabulary[entry_codes[order]]
        sorted_probabilities = probabilities[order]

        offsets = np.zeros(num_queries + 1, dtype=np.int64)
        np.cumsum(np.bincount(sorted_rows, minlength=num_queries), out=offsets[1:])
        name_list = sorted_names.tolist()
        probability_list = sorted_probabilities.tolist()
        boundaries = offsets.tolist()
        predictions: list[TypePrediction] = []
        for row in range(num_queries):
            start, stop = boundaries[row], boundaries[row + 1]
            predictions.append(
                TypePrediction(candidates=list(zip(name_list[start:stop], probability_list[start:stop])))
            )
        return predictions

    def predict_with_threshold(self, embedding: np.ndarray, threshold: float) -> Optional[TypePrediction]:
        """Return the prediction only when its confidence clears ``threshold``.

        This is the knob behind the precision/recall trade-off of Fig. 4 and
        Fig. 7: suppressing low-confidence predictions increases precision at
        the cost of recall.
        """
        prediction = self.predict(embedding)
        if prediction.confidence >= threshold:
            return prediction
        return None


def adapt_space_with_new_type(
    space: TypeSpace,
    type_name: str,
    embeddings: Sequence[np.ndarray],
    source: str = "adaptation",
) -> TypeSpace:
    """One-shot adaptation (Sec. 4.2): add markers for a previously unseen type.

    The encoder is untouched; only the type map grows — one bulk marker
    append that *extends* the space's columnar storage and its spatial index
    in place (cost proportional to the new markers, not the space).  After
    this call the predictor can output ``type_name`` for queries that land
    near the new markers — the paper's "open vocabulary without retraining"
    property, exercised by the adaptation tests and the rare-type benchmarks.
    """
    stacked = np.asarray([np.asarray(embedding).reshape(-1) for embedding in embeddings])
    if len(stacked):
        space.add_markers([type_name] * len(stacked), stacked, source=source)
    return space
