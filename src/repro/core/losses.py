"""Training objectives: Eqs. 1–4 of the paper.

* :class:`ClassificationHead` + :func:`classification_loss` — Eq. 1, the
  closed-vocabulary softmax over learned prototype vectors ``r̃_τ`` and
  biases ``b_τ``;
* :func:`triplet_loss` — Eq. 2, the standard triplet formulation (kept for
  reference and tests; the batched loss below generalises it);
* :func:`similarity_space_loss` — Eq. 3, the batched deep-similarity loss
  over the sets ``P+``/``P-`` within a margin of ``d+max``/``d-min``;
* :class:`TypilusLoss` — Eq. 4, the combination
  ``L_Space + λ · L_Class(W·r_s, Er(τ))`` with a learned projection ``W``
  and type-parameter erasure on the classification target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor
from repro.types.normalize import erase_parameters
from repro.types.parser import try_parse_type
from repro.utils.rng import SeededRNG

UNKNOWN_TYPE = "%UNK%"


# ---------------------------------------------------------------------------
# Eq. 1 — classification loss
# ---------------------------------------------------------------------------


class ClassificationHead(Module):
    """Prototype vectors ``r̃_τ`` and biases ``b_τ`` for a closed type vocabulary."""

    def __init__(self, vocabulary: dict[str, int], dim: int, rng: SeededRNG) -> None:
        super().__init__()
        if UNKNOWN_TYPE not in vocabulary:
            raise ValueError(f"classification vocabulary must contain {UNKNOWN_TYPE!r}")
        self.vocabulary = dict(vocabulary)
        self.dim = dim
        self.prototypes = Tensor(rng.np.normal(0.0, 0.1, size=(len(vocabulary), dim)), requires_grad=True)
        self.biases = Tensor(np.zeros(len(vocabulary)), requires_grad=True)
        self._id_to_type = [""] * len(vocabulary)
        for type_name, type_id in vocabulary.items():
            self._id_to_type[type_id] = type_name

    def __len__(self) -> int:
        return len(self.vocabulary)

    def type_id(self, type_name: str) -> int:
        return self.vocabulary.get(type_name, self.vocabulary[UNKNOWN_TYPE])

    def type_ids(self, type_names: Sequence[str]) -> np.ndarray:
        return np.asarray([self.type_id(name) for name in type_names], dtype=np.int64)

    def type_name(self, type_id: int) -> str:
        return self._id_to_type[type_id]

    def forward(self, embeddings: Tensor) -> Tensor:
        """Logits ``r_s · r̃_τ^T + b_τ`` for every type in the vocabulary."""
        return embeddings @ self.prototypes.transpose() + self.biases

    def predict(self, embeddings: Tensor) -> list[tuple[str, float]]:
        """Top-1 prediction and softmax confidence for each embedding."""
        logits = self.forward(embeddings).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        best = probabilities.argmax(axis=1)
        return [(self.type_name(int(index)), float(probabilities[row, index])) for row, index in enumerate(best)]

    def predict_distribution(self, embeddings: Tensor) -> np.ndarray:
        logits = self.forward(embeddings).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)


def classification_loss(head: ClassificationHead, embeddings: Tensor, type_names: Sequence[str]) -> Tensor:
    """Eq. 1: ``-log P(s : τ)`` averaged over the batch."""
    targets = head.type_ids(type_names)
    return F.cross_entropy(head(embeddings), targets)


# ---------------------------------------------------------------------------
# Eq. 2 — triplet loss
# ---------------------------------------------------------------------------


def triplet_loss(anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 2.0) -> Tensor:
    """Eq. 2 with the L1 distance: ``max(||a-n|| - ||a-p|| + m, 0)`` ... hinge form.

    Note the paper writes ``h(||r_s - r_s-|| - ||r_s - r_s+||, m)`` with
    ``h(x, m) = max(x + m, 0)`` — pulling positives closer than negatives by
    at least the margin.  Averaged over the batch.
    """
    distance_to_positive = (anchor - positive).abs().sum(axis=-1)
    distance_to_negative = (anchor - negative).abs().sum(axis=-1)
    hinge = (distance_to_positive - distance_to_negative + margin).clip(0.0, np.inf)
    return hinge.mean()


# ---------------------------------------------------------------------------
# Eq. 3 — batched similarity (type space) loss
# ---------------------------------------------------------------------------


@dataclass
class SpaceLossStats:
    """Diagnostics of one similarity-loss evaluation (useful in tests)."""

    num_anchors_with_positives: int
    mean_positive_distance: float
    mean_negative_distance: float


def similarity_space_loss(
    embeddings: Tensor,
    type_names: Sequence[str],
    margin: float = 2.0,
    return_stats: bool = False,
) -> Tensor | tuple[Tensor, SpaceLossStats]:
    """Eq. 3 over a minibatch.

    ``S+(s)`` / ``S-(s)`` are the same-typed / differently-typed symbols in
    the minibatch (as in the paper's experiments).  For each anchor ``s`` the
    loss pulls in the positives that are further than ``d-min - m`` and
    pushes away the negatives closer than ``d+max + m``.

    Anchors without any same-typed partner in the batch only contribute the
    repulsion term, matching the behaviour of the original implementation
    (rare types still shape the space through their negatives).
    """
    if len(type_names) != embeddings.shape[0]:
        raise ValueError("type_names must align with embeddings")
    labels = np.asarray([hash(name) for name in type_names])
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    different = ~same
    np.fill_diagonal(different, False)

    distances = F.pairwise_l1_distances(embeddings, embeddings)
    distance_values = distances.data

    # d+max / d-min per anchor (computed on values; the selection of which
    # pairs enter the loss is not differentiated through, as usual for
    # hard-example mining style objectives).
    positive_distances = np.where(same, distance_values, -np.inf)
    negative_distances = np.where(different, distance_values, np.inf)
    d_plus_max = positive_distances.max(axis=1)
    d_minus_min = negative_distances.min(axis=1)
    d_plus_max = np.where(np.isfinite(d_plus_max), d_plus_max, 0.0)
    d_minus_min = np.where(np.isfinite(d_minus_min), d_minus_min, 0.0)

    pull_mask = same & (distance_values > (d_minus_min[:, None] - margin))
    push_mask = different & (distance_values < (d_plus_max[:, None] + margin))

    pull_counts = np.maximum(pull_mask.sum(axis=1), 1)
    push_counts = np.maximum(push_mask.sum(axis=1), 1)

    dtype = distances.data.dtype
    pull_term = (distances * Tensor(pull_mask.astype(dtype))).sum(axis=1) / Tensor(pull_counts.astype(dtype))
    push_term = (distances * Tensor(push_mask.astype(dtype))).sum(axis=1) / Tensor(push_counts.astype(dtype))
    loss = (pull_term - push_term).mean()

    if not return_stats:
        return loss
    stats = SpaceLossStats(
        num_anchors_with_positives=int(same.any(axis=1).sum()),
        mean_positive_distance=float(distance_values[same].mean()) if same.any() else 0.0,
        mean_negative_distance=float(distance_values[different].mean()) if different.any() else 0.0,
    )
    return loss, stats


# ---------------------------------------------------------------------------
# Eq. 4 — the Typilus loss
# ---------------------------------------------------------------------------


def erased_type_name(type_name: str) -> str:
    """``Er(τ)``: drop all type parameters from a canonical type string."""
    parsed = try_parse_type(type_name)
    if parsed is None:
        return type_name
    return str(erase_parameters(parsed))


def erased_vocabulary(vocabulary: Sequence[str]) -> dict[str, int]:
    """Closed vocabulary over the parameter-erased types, with an %UNK% bucket."""
    erased = {UNKNOWN_TYPE: 0}
    for type_name in vocabulary:
        base = erased_type_name(type_name)
        if base not in erased:
            erased[base] = len(erased)
    return erased


class TypilusLoss(Module):
    """Eq. 4: ``L_Space(s) + λ · L_Class(W r_s, Er(τ))``.

    ``W`` is a learned linear projection of the TypeSpace; the classification
    head over the erased vocabulary provides prototype anchors during
    training.  At inference time both are discarded (the predictor only uses
    the TypeSpace), exactly as the paper describes.
    """

    def __init__(
        self,
        dim: int,
        type_vocabulary: Sequence[str],
        rng: SeededRNG,
        margin: float = 2.0,
        lambda_classification: float = 1.0,
    ) -> None:
        super().__init__()
        self.margin = margin
        self.lambda_classification = lambda_classification
        self.projection = Linear(dim, dim, rng.fork(1))
        self.erased_head = ClassificationHead(erased_vocabulary(type_vocabulary), dim, rng.fork(2))

    def forward(self, embeddings: Tensor, type_names: Sequence[str]) -> Tensor:
        space = similarity_space_loss(embeddings, type_names, margin=self.margin)
        erased_targets = [erased_type_name(name) for name in type_names]
        classification = classification_loss(self.erased_head, self.projection(embeddings), erased_targets)
        return space + classification * self.lambda_classification
