"""The paper's core contribution: losses, TypeSpace, kNN prediction, pipeline."""

from repro.core.embedder import SymbolEmbedder
from repro.core.filter import FilteredSuggestion, FilterRequest, TypeCheckedFilter
from repro.core.knn import (
    BatchNeighbourResult,
    ExactL1Index,
    NeighbourResult,
    RandomProjectionIndex,
    build_index,
)
from repro.core.losses import (
    UNKNOWN_TYPE,
    ClassificationHead,
    TypilusLoss,
    classification_loss,
    erased_type_name,
    erased_vocabulary,
    similarity_space_loss,
    triplet_loss,
)
from repro.core.metrics import (
    EvaluatedPrediction,
    FrequencyBucket,
    MetricSummary,
    PrecisionRecallPoint,
    bucketed_by_frequency,
    evaluate_prediction,
    precision_at_recall,
    precision_recall_curve,
    summarise,
    summarise_by_kind,
    summarise_by_rarity,
)
from repro.core.pipeline import (
    PIPELINE_FORMAT_VERSION,
    EncoderConfig,
    SymbolSuggestion,
    TypilusPipeline,
    build_encoder,
    build_encoder_from_vocabularies,
)
from repro.core.predictor import KNNTypePredictor, TypePrediction, adapt_space_with_new_type
from repro.core.trainer import (
    EpochStats,
    LossKind,
    Trainer,
    TrainingConfig,
    TrainingResult,
)
from repro.core.typespace import TypeMarker, TypeNeighbourBatch, TypeSpace

__all__ = [
    "SymbolEmbedder",
    "BatchNeighbourResult",
    "TypeNeighbourBatch",
    "FilterRequest",
    "PIPELINE_FORMAT_VERSION",
    "build_encoder_from_vocabularies",
    "ClassificationHead",
    "TypilusLoss",
    "classification_loss",
    "similarity_space_loss",
    "triplet_loss",
    "erased_type_name",
    "erased_vocabulary",
    "UNKNOWN_TYPE",
    "TypeSpace",
    "TypeMarker",
    "KNNTypePredictor",
    "TypePrediction",
    "adapt_space_with_new_type",
    "ExactL1Index",
    "RandomProjectionIndex",
    "NeighbourResult",
    "build_index",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "EpochStats",
    "LossKind",
    "EvaluatedPrediction",
    "MetricSummary",
    "PrecisionRecallPoint",
    "FrequencyBucket",
    "evaluate_prediction",
    "summarise",
    "summarise_by_kind",
    "summarise_by_rarity",
    "precision_recall_curve",
    "precision_at_recall",
    "bucketed_by_frequency",
    "TypeCheckedFilter",
    "FilteredSuggestion",
    "TypilusPipeline",
    "EncoderConfig",
    "SymbolSuggestion",
    "build_encoder",
]
