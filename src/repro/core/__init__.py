"""The paper's core contribution: losses, TypeSpace, kNN prediction, pipeline."""

from repro.core.filter import FilteredSuggestion, TypeCheckedFilter
from repro.core.knn import ExactL1Index, NeighbourResult, RandomProjectionIndex, build_index
from repro.core.losses import (
    UNKNOWN_TYPE,
    ClassificationHead,
    TypilusLoss,
    classification_loss,
    erased_type_name,
    erased_vocabulary,
    similarity_space_loss,
    triplet_loss,
)
from repro.core.metrics import (
    EvaluatedPrediction,
    FrequencyBucket,
    MetricSummary,
    PrecisionRecallPoint,
    bucketed_by_frequency,
    evaluate_prediction,
    precision_at_recall,
    precision_recall_curve,
    summarise,
    summarise_by_kind,
    summarise_by_rarity,
)
from repro.core.pipeline import (
    EncoderConfig,
    SymbolSuggestion,
    TypilusPipeline,
    build_encoder,
)
from repro.core.predictor import KNNTypePredictor, TypePrediction, adapt_space_with_new_type
from repro.core.trainer import (
    EpochStats,
    LossKind,
    Trainer,
    TrainingConfig,
    TrainingResult,
)
from repro.core.typespace import TypeMarker, TypeSpace

__all__ = [
    "ClassificationHead",
    "TypilusLoss",
    "classification_loss",
    "similarity_space_loss",
    "triplet_loss",
    "erased_type_name",
    "erased_vocabulary",
    "UNKNOWN_TYPE",
    "TypeSpace",
    "TypeMarker",
    "KNNTypePredictor",
    "TypePrediction",
    "adapt_space_with_new_type",
    "ExactL1Index",
    "RandomProjectionIndex",
    "NeighbourResult",
    "build_index",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "EpochStats",
    "LossKind",
    "EvaluatedPrediction",
    "MetricSummary",
    "PrecisionRecallPoint",
    "FrequencyBucket",
    "evaluate_prediction",
    "summarise",
    "summarise_by_kind",
    "summarise_by_rarity",
    "precision_recall_curve",
    "precision_at_recall",
    "bucketed_by_frequency",
    "TypeCheckedFilter",
    "FilteredSuggestion",
    "TypilusPipeline",
    "EncoderConfig",
    "SymbolSuggestion",
    "build_encoder",
]
