"""IVF serving index: coarse k-means cells, shortlist probe, exact re-rank.

This is the serving tier for million-marker type maps.  The exact and LSH
indexes in :mod:`repro.core.knn` scan (a bucket neighbourhood of) the whole
point set per query; at millions of markers even the bucketed scan is too
slow.  :class:`IVFIndex` follows the FAISS inverted-file design instead:

* **training** — a deterministic, seeded, pure-numpy k-means (L1 assignment,
  per-cell component-wise median update, i.e. k-medians) partitions the
  points into ``nlist`` cells around learned centroids;
* **probing** — a query measures the L1 distance to every centroid (an
  O(nlist) scan, not O(points)) and gathers the members of its ``nprobe``
  nearest cells into a shortlist;
* **re-ranking** — the shortlist is scored with the exact L1 distance and
  the top ``k`` are returned.  With quantization enabled the shortlist is
  first scanned in reduced precision (``"float16"``, or ``"int8"`` with a
  per-dimension scale + zero point) and only the top candidates of that scan
  are exactly re-ranked — approximate arithmetic selects candidates, it
  never orders the final result.

Queries therefore touch ``nlist + nprobe/nlist · N`` points instead of
``N`` — sub-linear growth that ``bench_fig6_knn_sweep`` measures against the
exact index on a 10k → 200k marker scale axis.

The index is **incrementally extendable** like its siblings:
:meth:`IVFIndex.extend` assigns only the new rows to cells (the centroids,
trained on the first non-empty point set, stay fixed), so PR 4's contract
survives in the form that matters for an approximate index: a grown index
keeps the same recall floor against the exact oracle as one built from
scratch, at O(new points) cost.  Whenever a probed shortlist holds fewer
than ``k`` points the query falls back to the embedded exact index, so
results are never short.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.knn import (
    BatchNeighbourResult,
    ExactL1Index,
    NeighbourResult,
    _as_query_matrix,
    _empty_batch,
    _top_k_rows,
    l1_distance_matrix,
)
from repro.utils.rng import SeededRNG

#: Reduced-precision shortlist-scan modes of :class:`IVFIndex`.
QUANTIZE_KINDS = ("float16", "int8")

#: Default cap on the number of points the coarse quantizer trains on; the
#: k-means sample is drawn deterministically from the first point set.
DEFAULT_TRAIN_POINTS = 65_536


def kmeans_cells(
    points: np.ndarray, nlist: int, seed: int = 0, iterations: int = 8
) -> np.ndarray:
    """Deterministic seeded k-means under the L1 metric (pure numpy).

    Centroids are initialised from ``nlist`` distinct seeded-random rows;
    each Lloyd iteration assigns points to their L1-nearest centroid and
    moves every non-empty cell's centroid to the component-wise **median**
    of its members (the L1-optimal centre, making this k-medians).  Empty
    cells keep their previous centroid.  Converged assignments end the loop
    early.  Identical inputs and seed produce identical centroids on every
    platform — the property the extend-≡-rebuild recall contract rests on.
    """
    if len(points) == 0:
        raise ValueError("cannot train a coarse quantizer on zero points")
    nlist = min(nlist, len(points))
    rng = SeededRNG(seed)
    chosen = np.sort(rng.np.choice(len(points), size=nlist, replace=False))
    centroids = np.array(points[chosen], dtype=points.dtype)
    assignment = np.full(len(points), -1, dtype=np.int64)
    for _ in range(iterations):
        next_assignment = np.argmin(l1_distance_matrix(points, centroids), axis=1)
        if np.array_equal(next_assignment, assignment):
            break
        assignment = next_assignment
        order = np.argsort(assignment, kind="stable")
        cells, starts = np.unique(assignment[order], return_index=True)
        for position, cell in enumerate(cells):
            stop = starts[position + 1] if position + 1 < len(starts) else len(order)
            members = order[starts[position] : stop]
            centroids[cell] = np.median(points[members], axis=0)
    return centroids


class QuantizedShortlist:
    """Reduced-precision L1 scorer over the stored rows (shortlist stage only).

    ``"float16"`` keeps a half-precision copy of every row; ``"int8"`` keeps
    byte codes under a per-dimension scale + zero point learned from the
    first non-empty row set (later rows are clipped into that range).  Both
    modes answer :meth:`distances` — approximate L1 distances from a query
    batch to a gathered row subset — which the IVF query path uses purely to
    *select* re-rank candidates; the distances the index reports always come
    from the exact full-precision scan of those candidates.
    """

    def __init__(self, kind: str, dim: int) -> None:
        if kind not in QUANTIZE_KINDS:
            raise ValueError(
                f"quantize must be one of {QUANTIZE_KINDS} (or None), got {kind!r}"
            )
        self.kind = kind
        self.dim = dim
        code_dtype = np.float16 if kind == "float16" else np.int8
        self._codes = np.empty((0, dim), dtype=code_dtype)
        self._size = 0
        self._scales: Optional[np.ndarray] = None  # int8 only, per dimension
        self._offsets: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._size

    def extend(self, points: np.ndarray) -> None:
        """Append codes for ``points`` (rows in index storage order)."""
        if not len(points):
            return
        if self.kind == "int8" and self._scales is None:
            lows = points.min(axis=0).astype(np.float64)
            highs = points.max(axis=0).astype(np.float64)
            scales = (highs - lows) / 255.0
            scales[scales == 0.0] = 1.0  # constant dimensions encode to one code
            self._scales = scales
            self._offsets = lows
        codes = self._encode(points)
        needed = self._size + len(codes)
        if needed > len(self._codes):
            capacity = max(needed, 2 * len(self._codes), 16)
            storage = np.empty((capacity, self.dim), dtype=self._codes.dtype)
            storage[: self._size] = self._codes[: self._size]
            self._codes = storage
        self._codes[self._size : needed] = codes
        self._size = needed

    def _encode(self, values: np.ndarray) -> np.ndarray:
        if self.kind == "float16":
            return np.asarray(values, dtype=np.float16)
        assert self._scales is not None and self._offsets is not None
        levels = np.rint((np.asarray(values, dtype=np.float64) - self._offsets) / self._scales)
        return (np.clip(levels, 0.0, 255.0) - 128.0).astype(np.int8)

    def distances(self, queries: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Approximate L1 distances ``(len(queries), len(rows))`` to ``rows``."""
        codes = self._codes[: self._size][rows]
        if self.kind == "float16":
            return l1_distance_matrix(np.asarray(queries, dtype=np.float16), codes)
        query_codes = self._encode(queries).astype(np.int16)
        point_codes = codes.astype(np.int16)
        assert self._scales is not None
        scales = self._scales
        distances = np.zeros((len(queries), len(rows)), dtype=np.float64)
        scratch = np.empty((len(queries), len(rows)), dtype=np.int16)
        for dim in range(self.dim):
            np.subtract.outer(query_codes[:, dim], point_codes[:, dim], out=scratch)
            np.abs(scratch, out=scratch)
            distances += scales[dim] * scratch
        return distances


class IVFIndex:
    """Inverted-file index: k-means cells, ``nprobe`` shortlist, exact re-rank.

    Construction parameters mirror FAISS: ``nlist`` cells (clamped to the
    point count at training time), ``nprobe`` probed cells per query,
    ``quantize`` an optional reduced-precision shortlist scan
    (``"float16"``/``"int8"``) whose top ``max(rerank_floor, rerank_factor·k)``
    candidates are exactly re-ranked.  All randomness (the k-means sample and
    initialisation) flows from ``seed``.

    The embedded :class:`ExactL1Index` provides row storage, the re-rank
    arithmetic and the fallback for queries whose probed cells hold fewer
    than ``k`` points — recall degrades gracefully, results are never short.
    """

    def __init__(
        self,
        points: np.ndarray,
        nlist: int = 64,
        nprobe: int = 8,
        seed: int = 0,
        dtype: Optional[np.dtype] = None,
        quantize: Optional[str] = None,
        train_points: int = DEFAULT_TRAIN_POINTS,
        kmeans_iterations: int = 8,
        rerank_factor: int = 4,
        rerank_floor: int = 32,
    ) -> None:
        if not isinstance(nlist, (int, np.integer)) or nlist < 1:
            raise ValueError(f"nlist must be a positive integer, got {nlist!r}")
        if not isinstance(nprobe, (int, np.integer)) or nprobe < 1:
            raise ValueError(f"nprobe must be a positive integer, got {nprobe!r}")
        if nprobe > nlist:
            raise ValueError(f"nprobe {nprobe} cannot exceed nlist {nlist}")
        if quantize is not None and quantize not in QUANTIZE_KINDS:
            raise ValueError(
                f"quantize must be one of {QUANTIZE_KINDS} (or None), got {quantize!r}"
            )
        if train_points < 1:
            raise ValueError(f"train_points must be positive, got {train_points!r}")
        if kmeans_iterations < 1:
            raise ValueError(f"kmeans_iterations must be positive, got {kmeans_iterations!r}")
        if rerank_factor < 1 or rerank_floor < 1:
            raise ValueError("rerank_factor and rerank_floor must be positive")
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.seed = int(seed)
        self.quantize = quantize
        self.train_points = int(train_points)
        self.kmeans_iterations = int(kmeans_iterations)
        self.rerank_factor = int(rerank_factor)
        self.rerank_floor = int(rerank_floor)
        self._exact = ExactL1Index(np.asarray(points), dtype=dtype)
        self.dtype = self._exact.dtype
        # The coarse quantizer trains lazily on the first non-empty point set
        # (like the LSH hyperplanes), so an index constructed empty and later
        # extended probes cells exactly as one constructed full would.
        self._centroids: Optional[np.ndarray] = None
        self._cells: list[np.ndarray] = []
        self._quantized: Optional[QuantizedShortlist] = None
        if len(self._exact):
            self._assign_points(0)

    @property
    def points(self) -> np.ndarray:
        return self._exact.points

    @property
    def num_cells(self) -> int:
        """Trained cell count (0 before the first non-empty point set)."""
        return 0 if self._centroids is None else len(self._centroids)

    def __len__(self) -> int:
        return len(self._exact)

    def extend(self, points: np.ndarray) -> None:
        """Append points, assigning only the extension to cells."""
        old_size = len(self._exact)
        self._exact.extend(points)
        if len(self._exact) > old_size:
            self._assign_points(old_size)

    # -- training / assignment ---------------------------------------------------------

    def _train(self, points: np.ndarray) -> None:
        sample = points
        if len(points) > self.train_points:
            rng = SeededRNG(self.seed)
            sample = points[np.sort(rng.np.choice(len(points), size=self.train_points, replace=False))]
        self._centroids = kmeans_cells(
            sample, self.nlist, seed=self.seed, iterations=self.kmeans_iterations
        )
        self._cells = [np.zeros(0, dtype=np.int64) for _ in range(len(self._centroids))]

    def _assign_points(self, start: int) -> None:
        """Assign the stored points from ``start`` onward to their cells."""
        points = self._exact.points
        if self._centroids is None:
            self._train(points)
            start = 0  # first training assigns everything, however we got here
        new_points = points[start:]
        assignment = np.argmin(l1_distance_matrix(new_points, self._centroids), axis=1)
        order = np.argsort(assignment, kind="stable")
        cells, starts = np.unique(assignment[order], return_index=True)
        for position, cell in enumerate(cells):
            stop = starts[position + 1] if position + 1 < len(starts) else len(order)
            # New row indices all exceed the existing members, so appending the
            # sorted extension keeps every cell's member list ascending.
            members = np.sort(order[starts[position] : stop]) + start
            self._cells[cell] = np.concatenate([self._cells[cell], members])
        if self.quantize is not None:
            if self._quantized is None:
                self._quantized = QuantizedShortlist(self.quantize, points.shape[1])
            self._quantized.extend(points[len(self._quantized) :])

    # -- queries -----------------------------------------------------------------------

    def query(self, vector: np.ndarray, k: int) -> NeighbourResult:
        return self.query_batch_arrays(vector, k).row(0)

    def query_batch(self, vectors: np.ndarray, k: int) -> list[NeighbourResult]:
        return self.query_batch_arrays(vectors, k).to_list()

    def query_batch_arrays(self, vectors: np.ndarray, k: int) -> BatchNeighbourResult:
        vectors = _as_query_matrix(vectors, self.dtype)
        if len(self._exact) == 0:
            return _empty_batch(len(vectors), self.dtype)
        points = self.points
        k = min(k, len(points))
        assert self._centroids is not None
        nprobe = min(self.nprobe, len(self._centroids))
        centroid_distances = l1_distance_matrix(vectors, self._centroids)
        probed_cells, _ = _top_k_rows(centroid_distances, nprobe)

        all_indices = np.empty((len(vectors), k), dtype=np.int64)
        all_distances = np.empty((len(vectors), k), dtype=self.dtype)
        # Queries probing the same cell set share one shortlist gather and one
        # vectorized re-rank — clustered query batches collapse to a handful
        # of groups (probe order does not matter, so group on the sorted set).
        probe_sets = np.sort(probed_cells, axis=1)
        unique_sets, group_of_row = np.unique(probe_sets, axis=0, return_inverse=True)
        group_of_row = np.asarray(group_of_row).reshape(-1)  # numpy 2.0 shape quirk
        fallback_groups: list[np.ndarray] = []
        for group, cells in enumerate(unique_sets):
            rows = np.flatnonzero(group_of_row == group)
            shortlist = self._shortlist_for(cells)
            if len(shortlist) < k:
                fallback_groups.append(rows)
                continue
            queries = vectors[rows]
            candidates = shortlist
            if self._quantized is not None:
                candidates = self._rerank_candidates(queries, shortlist, k)
            distances = l1_distance_matrix(queries, points[candidates])
            positions, sorted_distances = _top_k_rows(distances, k)
            all_indices[rows] = candidates[positions]
            all_distances[rows] = sorted_distances
        if fallback_groups:
            rows = np.concatenate(fallback_groups)
            exact = self._exact.query_batch_arrays(vectors[rows], k)
            all_indices[rows] = exact.indices
            all_distances[rows] = exact.distances
        counts = np.full(len(vectors), k, dtype=np.int64)
        return BatchNeighbourResult(all_indices, all_distances, counts)

    def _shortlist_for(self, cells: np.ndarray) -> np.ndarray:
        """Members of the probed cells as one ascending index array."""
        members = [self._cells[cell] for cell in cells if len(self._cells[cell])]
        if not members:
            return np.zeros(0, dtype=np.int64)
        total = sum(len(member) for member in members)
        buffer = np.empty(total, dtype=np.int64)
        offset = 0
        for member in members:
            buffer[offset : offset + len(member)] = member
            offset += len(member)
        # Cells are disjoint, so a sort is already duplicate-free — ascending
        # order keeps re-rank tie-breaking deterministic.
        buffer.sort()
        return buffer

    def _rerank_candidates(self, queries: np.ndarray, shortlist: np.ndarray, k: int) -> np.ndarray:
        """Shrink the shortlist with the quantized scan before the exact re-rank.

        Every query in the group contributes its ``max(rerank_floor,
        rerank_factor·k)`` nearest shortlist rows under the approximate
        distances; the union is exactly re-ranked, so quantization can only
        ever *select* candidates (conservatively widened across the group),
        never order the reported neighbours.
        """
        assert self._quantized is not None
        rerank = min(len(shortlist), max(self.rerank_floor, self.rerank_factor * k))
        if rerank == len(shortlist):
            return shortlist
        approximate = self._quantized.distances(queries, shortlist)
        kept = np.argpartition(approximate, rerank - 1, axis=1)[:, :rerank]
        return np.unique(shortlist[kept])
