"""The TypeSpace and its type map (Sec. 4.2).

After training, the encoder ``e(·)`` maps symbols to type embeddings but
does not itself know any types.  The *type map* ``τ_map`` pairs the
embeddings of symbols with **known** types (the markers) with those types;
prediction is then a k-nearest-neighbour query against the markers (Eq. 5).

Because the map is data, not parameters, it can be extended at any time with
new types — including types never seen during training — which is how
Typilus supports an open type vocabulary without retraining.

The space answers whole query batches at once: :meth:`TypeSpace.nearest_batch`
returns dense arrays of type codes and distances (one row per query) backed
by the vectorized index, which is what the batched predictor and the project
annotation engine consume.  The marker matrix, the per-marker type codes and
the index itself are cached and invalidated together whenever a marker is
added.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.knn import BatchNeighbourResult, NearestNeighbourIndex, build_index


@dataclass
class TypeMarker:
    """One entry of the type map: an embedding labelled with its true type."""

    type_name: str
    embedding: np.ndarray
    source: str = ""  # provenance (filename / split), useful for analysis


@dataclass
class TypeNeighbourBatch:
    """The ``k`` nearest markers of a query batch, as dense arrays.

    ``type_codes`` is ``(num_queries, k)`` int64 indexing into
    ``type_vocabulary``, ``distances`` the matching L1 distances and
    ``counts`` the per-row column count.  As with
    :class:`~repro.core.knn.BatchNeighbourResult` there is no padding: an
    empty space yields zero-width arrays, otherwise every column is valid.
    """

    type_codes: np.ndarray
    distances: np.ndarray
    counts: np.ndarray
    type_vocabulary: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.type_codes)

    def row(self, position: int) -> list[tuple[str, float]]:
        count = int(self.counts[position])
        return [
            (self.type_vocabulary[int(code)], float(distance))
            for code, distance in zip(self.type_codes[position, :count], self.distances[position, :count])
        ]


class TypeSpace:
    """A collection of type markers plus a nearest-neighbour index over them."""

    def __init__(self, dim: int, approximate_index: bool = False) -> None:
        self.dim = dim
        self.approximate_index = approximate_index
        self._markers: list[TypeMarker] = []
        self._index: Optional[NearestNeighbourIndex] = None
        self._matrix: Optional[np.ndarray] = None
        self._type_codes: Optional[np.ndarray] = None
        self._type_vocabulary: Optional[tuple[str, ...]] = None
        self._vocabulary_array: Optional[np.ndarray] = None
        self._name_ranks: Optional[np.ndarray] = None

    # -- population ----------------------------------------------------------------

    def _invalidate_caches(self) -> None:
        self._index = None
        self._matrix = None
        self._type_codes = None
        self._type_vocabulary = None
        self._vocabulary_array = None
        self._name_ranks = None

    def add_marker(self, type_name: str, embedding: np.ndarray, source: str = "") -> None:
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        if embedding.shape[0] != self.dim:
            raise ValueError(f"marker dimension {embedding.shape[0]} does not match TypeSpace dim {self.dim}")
        self._markers.append(TypeMarker(type_name=type_name, embedding=embedding, source=source))
        self._invalidate_caches()  # the index and marker arrays are rebuilt lazily

    def add_markers(self, type_names: Sequence[str], embeddings: np.ndarray, source: str = "") -> None:
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if len(type_names) != len(embeddings):
            raise ValueError("type_names and embeddings must have the same length")
        for type_name, embedding in zip(type_names, embeddings):
            self.add_marker(type_name, embedding, source=source)

    # -- queries ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._markers)

    @property
    def markers(self) -> list[TypeMarker]:
        return list(self._markers)

    def known_types(self) -> set[str]:
        return {marker.type_name for marker in self._markers}

    def type_counts(self) -> Counter:
        return Counter(marker.type_name for marker in self._markers)

    def marker_matrix(self) -> np.ndarray:
        if self._matrix is None:
            if not self._markers:
                self._matrix = np.zeros((0, self.dim))
            else:
                self._matrix = np.stack([marker.embedding for marker in self._markers])
        return self._matrix

    def type_vocabulary(self) -> tuple[str, ...]:
        """Distinct marker types in first-seen order (the code space of queries)."""
        self._ensure_type_codes()
        assert self._type_vocabulary is not None
        return self._type_vocabulary

    def marker_type_codes(self) -> np.ndarray:
        """Per-marker integer codes into :meth:`type_vocabulary`."""
        self._ensure_type_codes()
        assert self._type_codes is not None
        return self._type_codes

    def type_vocabulary_array(self) -> np.ndarray:
        """The vocabulary as a cached numpy object array (code → name)."""
        if self._vocabulary_array is None:
            self._vocabulary_array = np.asarray(self.type_vocabulary(), dtype=object)
        return self._vocabulary_array

    def type_name_ranks(self) -> np.ndarray:
        """Alphabetical rank of each type code, cached for tie-breaking."""
        if self._name_ranks is None:
            vocabulary = self.type_vocabulary_array()
            ranks = np.empty(len(vocabulary), dtype=np.int64)
            ranks[np.argsort(vocabulary, kind="stable")] = np.arange(len(vocabulary))
            self._name_ranks = ranks
        return self._name_ranks

    def _ensure_type_codes(self) -> None:
        if self._type_codes is not None:
            return
        vocabulary: dict[str, int] = {}
        codes = np.empty(len(self._markers), dtype=np.int64)
        for position, marker in enumerate(self._markers):
            code = vocabulary.setdefault(marker.type_name, len(vocabulary))
            codes[position] = code
        self._type_codes = codes
        self._type_vocabulary = tuple(vocabulary)

    def index(self) -> NearestNeighbourIndex:
        """The (lazily rebuilt) spatial index over the markers."""
        if self._index is None:
            self._index = build_index(self.marker_matrix(), approximate=self.approximate_index)
        return self._index

    def nearest(self, embedding: np.ndarray, k: int) -> list[tuple[str, float]]:
        """The ``k`` nearest markers of ``embedding``: ``(type, L1 distance)``."""
        return self.nearest_batch(np.asarray(embedding, dtype=np.float64).reshape(1, -1), k).row(0)

    def nearest_batch(self, embeddings: np.ndarray, k: int) -> TypeNeighbourBatch:
        """Nearest markers of a whole query batch in one vectorized index call."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        result: BatchNeighbourResult = self.index().query_batch_arrays(embeddings, k)
        return TypeNeighbourBatch(
            type_codes=self.marker_type_codes()[result.indices],
            distances=result.distances,
            counts=result.counts,
            type_vocabulary=self.type_vocabulary(),
        )

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str) -> str:
        """Persist markers to an ``.npz`` file."""
        np.savez(
            path,
            embeddings=self.marker_matrix(),
            type_names=np.asarray([marker.type_name for marker in self._markers], dtype=object),
            sources=np.asarray([marker.source for marker in self._markers], dtype=object),
            dim=np.asarray([self.dim]),
        )
        return path

    @classmethod
    def load(cls, path: str, approximate_index: bool = False) -> "TypeSpace":
        with np.load(path, allow_pickle=True) as archive:
            dim = int(archive["dim"][0])
            space = cls(dim, approximate_index=approximate_index)
            embeddings = archive["embeddings"]
            type_names = archive["type_names"]
            sources = archive["sources"]
            for type_name, embedding, source in zip(type_names, embeddings, sources):
                space.add_marker(str(type_name), embedding, source=str(source))
        return space
