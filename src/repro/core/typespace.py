"""The TypeSpace and its type map (Sec. 4.2).

After training, the encoder ``e(·)`` maps symbols to type embeddings but
does not itself know any types.  The *type map* ``τ_map`` pairs the
embeddings of symbols with **known** types (the markers) with those types;
prediction is then a k-nearest-neighbour query against the markers (Eq. 5).

Because the map is data, not parameters, it can be extended at any time with
new types — including types never seen during training — which is how
Typilus supports an open type vocabulary without retraining.

The space answers whole query batches at once: :meth:`TypeSpace.nearest_batch`
returns dense arrays of type codes and distances (one row per query) backed
by the vectorized index, which is what the batched predictor and the project
annotation engine consume.

Storage is **columnar and incremental**: markers live in one growable
embedding matrix plus a parallel int64 type-code array over an interned
vocabulary — there is no per-marker object graph.  Adding markers *extends*
the matrix, the code array and (when already built) the nearest-neighbour
index in place, at a cost proportional to the extension; nothing is
invalidated wholesale, which is what keeps long-lived serving and one-shot
type adaptation cheap.  The marker dtype is configurable (``float64`` by
default, matching the historical behaviour bit for bit; ``float32`` halves
the memory and keeps float32 encoder pipelines up-cast free).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.knn import (
    BatchNeighbourResult,
    NearestNeighbourIndex,
    build_index,
    validate_index_params,
)


@dataclass
class TypeMarker:
    """One entry of the type map: an embedding labelled with its true type."""

    type_name: str
    embedding: np.ndarray
    source: str = ""  # provenance (filename / split), useful for analysis


@dataclass
class TypeNeighbourBatch:
    """The ``k`` nearest markers of a query batch, as dense arrays.

    ``type_codes`` is ``(num_queries, k)`` int64 indexing into
    ``type_vocabulary``, ``distances`` the matching L1 distances and
    ``counts`` the per-row column count.  As with
    :class:`~repro.core.knn.BatchNeighbourResult` there is no padding: an
    empty space yields zero-width arrays, otherwise every column is valid.
    """

    type_codes: np.ndarray
    distances: np.ndarray
    counts: np.ndarray
    type_vocabulary: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.type_codes)

    def row(self, position: int) -> list[tuple[str, float]]:
        count = int(self.counts[position])
        return [
            (self.type_vocabulary[int(code)], float(distance))
            for code, distance in zip(self.type_codes[position, :count], self.distances[position, :count])
        ]


class TypeSpace:
    """A columnar collection of type markers plus a nearest-neighbour index.

    The marker embeddings form one ``(num_markers, dim)`` matrix in growable
    storage, the marker types one int64 code array over an interned
    vocabulary.  :meth:`add_marker` / :meth:`add_markers` append to both and
    extend the spatial index in place when it has been built — repeated
    additions cost O(extension), not O(markers).
    """

    def __init__(
        self,
        dim: int,
        approximate_index: bool = False,
        dtype: Union[str, np.dtype] = np.float64,
        index_kind: Optional[str] = None,
        index_params: Optional[dict] = None,
    ) -> None:
        self.dim = dim
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"TypeSpace dtype must be float32 or float64, got {self.dtype}")
        # ``index_kind`` ("exact" | "lsh" | "ivf") supersedes the legacy
        # ``approximate_index`` boolean, which maps to "lsh"; both kind and
        # params are validated now, with the indexes' own constructor checks,
        # not at the first query.
        if index_kind is None:
            index_kind = "lsh" if approximate_index else "exact"
        self.index_kind = index_kind
        self.index_params = dict(index_params or {})
        validate_index_params(self.index_kind, dim, dtype=self.dtype, **self.index_params)
        self.approximate_index = self.index_kind != "exact"
        self._embeddings = np.empty((0, dim), dtype=self.dtype)  # growable row storage
        self._size = 0
        self._codes = np.empty(0, dtype=np.int64)  # growable, parallel to the rows
        self._sources: list[str] = []
        self._vocabulary: dict[str, int] = {}  # interned type name → code
        self._vocabulary_list: list[str] = []  # code → type name
        self._index: Optional[NearestNeighbourIndex] = None
        # Vocabulary-derived caches, rebuilt lazily only when a *new* type
        # name appears (O(num_types), independent of the marker count).
        self._vocabulary_tuple: Optional[tuple[str, ...]] = None
        self._vocabulary_array: Optional[np.ndarray] = None
        self._name_ranks: Optional[np.ndarray] = None

    # -- population ----------------------------------------------------------------

    def _intern(self, type_name: str) -> int:
        code = self._vocabulary.get(type_name)
        if code is None:
            code = len(self._vocabulary)
            self._vocabulary[type_name] = code
            self._vocabulary_list.append(type_name)
            # The vocabulary grew: views over it are stale (the marker
            # columns and the index are not — they only ever extend).
            self._vocabulary_tuple = None
            self._vocabulary_array = None
            self._name_ranks = None
        return code

    def _append_rows(self, embeddings: np.ndarray, codes: np.ndarray, sources: Sequence[str]) -> None:
        needed = self._size + len(embeddings)
        if needed > len(self._embeddings):
            capacity = max(needed, 2 * len(self._embeddings), 16)
            storage = np.empty((capacity, self.dim), dtype=self.dtype)
            storage[: self._size] = self._embeddings[: self._size]
            self._embeddings = storage
            code_storage = np.empty(capacity, dtype=np.int64)
            code_storage[: self._size] = self._codes[: self._size]
            self._codes = code_storage
        self._embeddings[self._size : needed] = embeddings
        self._codes[self._size : needed] = codes
        self._sources.extend(sources)
        self._size = needed
        if self._index is not None:
            self._index.extend(self._embeddings[needed - len(embeddings) : needed])

    def add_marker(self, type_name: str, embedding: np.ndarray, source: str = "") -> None:
        embedding = np.asarray(embedding, dtype=self.dtype).reshape(-1)
        if embedding.shape[0] != self.dim:
            raise ValueError(f"marker dimension {embedding.shape[0]} does not match TypeSpace dim {self.dim}")
        self._append_rows(
            embedding.reshape(1, -1),
            np.asarray([self._intern(type_name)], dtype=np.int64),
            [source],
        )

    def add_markers(
        self,
        type_names: Sequence[str],
        embeddings: np.ndarray,
        source: Union[str, Sequence[str]] = "",
    ) -> None:
        """Append many markers in one shot.

        This is the bulk path: the rows are copied into storage once, the
        codes interned in one pass and the index (when built) extended with a
        single call — never once per marker.  ``source`` may be one shared
        provenance string or a per-marker sequence.
        """
        embeddings = np.asarray(embeddings, dtype=self.dtype)
        if embeddings.ndim != 2 or embeddings.shape[1] != self.dim:
            raise ValueError(
                f"embeddings must be a (num_markers, {self.dim}) array, got shape {embeddings.shape}"
            )
        if len(type_names) != len(embeddings):
            raise ValueError("type_names and embeddings must have the same length")
        if isinstance(source, str):
            sources: Sequence[str] = [source] * len(embeddings)
        else:
            sources = list(source)
            if len(sources) != len(embeddings):
                raise ValueError("per-marker sources must match the number of markers")
        if not len(embeddings):
            return
        codes = np.fromiter(
            (self._intern(type_name) for type_name in type_names), dtype=np.int64, count=len(type_names)
        )
        self._append_rows(embeddings, codes, sources)

    # -- queries ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def markers(self) -> list[TypeMarker]:
        """The markers as a list of objects (a view for analysis/tests)."""
        return [
            TypeMarker(
                type_name=self._vocabulary_list[self._codes[position]],
                embedding=self._embeddings[position],
                source=self._sources[position],
            )
            for position in range(self._size)
        ]

    def marker_type_names(self) -> list[str]:
        """Per-marker type names (decoded from the columnar code array)."""
        vocabulary = self._vocabulary_list
        return [vocabulary[code] for code in self._codes[: self._size]]

    def marker_sources(self) -> list[str]:
        """Per-marker provenance strings."""
        return list(self._sources)

    def known_types(self) -> set[str]:
        return set(self._vocabulary)

    def type_counts(self) -> Counter:
        counts = np.bincount(self._codes[: self._size], minlength=len(self._vocabulary_list))
        return Counter(
            {name: int(count) for name, count in zip(self._vocabulary_list, counts) if count}
        )

    def marker_matrix(self) -> np.ndarray:
        """The ``(num_markers, dim)`` embedding matrix (a view, not a copy)."""
        return self._embeddings[: self._size]

    @property
    def is_memory_mapped(self) -> bool:
        """Whether the marker matrix is a read-only map of the on-disk file.

        True only for a raw-layout :meth:`load` with ``mmap=True`` that has
        not yet grown: the first :meth:`add_markers` promotes the matrix to
        private writable storage and this becomes False.  Serving processes
        use it to prove (not assume) that N workers share one physical copy.
        """
        return isinstance(self._embeddings, np.memmap)

    @property
    def marker_nbytes(self) -> int:
        """Bytes held by the marker matrix (file-backed bytes when mapped)."""
        return int(self.marker_matrix().nbytes)

    def type_vocabulary(self) -> tuple[str, ...]:
        """Distinct marker types in first-seen order (the code space of queries)."""
        if self._vocabulary_tuple is None:
            self._vocabulary_tuple = tuple(self._vocabulary_list)
        return self._vocabulary_tuple

    def marker_type_codes(self) -> np.ndarray:
        """Per-marker integer codes into :meth:`type_vocabulary`."""
        return self._codes[: self._size]

    def type_vocabulary_array(self) -> np.ndarray:
        """The vocabulary as a cached numpy object array (code → name)."""
        if self._vocabulary_array is None:
            self._vocabulary_array = np.asarray(self._vocabulary_list, dtype=object)
        return self._vocabulary_array

    def type_name_ranks(self) -> np.ndarray:
        """Alphabetical rank of each type code, cached for tie-breaking."""
        if self._name_ranks is None:
            vocabulary = self.type_vocabulary_array()
            ranks = np.empty(len(vocabulary), dtype=np.int64)
            ranks[np.argsort(vocabulary, kind="stable")] = np.arange(len(vocabulary))
            self._name_ranks = ranks
        return self._name_ranks

    def index(self) -> NearestNeighbourIndex:
        """The spatial index over the markers (built lazily, then extended)."""
        if self._index is None:
            self._index = build_index(
                self.marker_matrix(), kind=self.index_kind, dtype=self.dtype, **self.index_params
            )
        return self._index

    def reindex(self, index_kind: str, **index_params) -> None:
        """Switch the index kind/params; the new index builds lazily on the next query.

        This is how a loaded serving pipeline swaps its exact scan for an IVF
        index (``space.reindex("ivf", nlist=256, nprobe=8)``) without touching
        the markers.  Parameters are validated immediately.
        """
        validate_index_params(index_kind, self.dim, dtype=self.dtype, **index_params)
        self.index_kind = index_kind
        self.index_params = dict(index_params)
        self.approximate_index = index_kind != "exact"
        self._index = None

    def nearest(self, embedding: np.ndarray, k: int) -> list[tuple[str, float]]:
        """The ``k`` nearest markers of ``embedding``: ``(type, L1 distance)``."""
        return self.nearest_batch(np.asarray(embedding).reshape(1, -1), k).row(0)

    def nearest_batch(self, embeddings: np.ndarray, k: int) -> TypeNeighbourBatch:
        """Nearest markers of a whole query batch in one vectorized index call.

        Queries run in the space's storage dtype — the index casts them once,
        so a float32 space never silently promotes the distance math to
        float64.
        """
        result: BatchNeighbourResult = self.index().query_batch_arrays(embeddings, k)
        return TypeNeighbourBatch(
            type_codes=self.marker_type_codes()[result.indices],
            distances=result.distances,
            counts=result.counts,
            type_vocabulary=self.type_vocabulary(),
        )

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str, layout: str = "npz") -> str:
        """Persist the markers.

        ``layout="npz"`` (the historical default) writes one ``.npz`` archive
        with per-marker type-name strings.  ``layout="raw"`` treats ``path``
        as a directory and writes the serving layout: the marker matrix as a
        raw ``embeddings.npy`` (loadable with ``mmap_mode="r"``, so a
        million-marker map opens without copying into every process) next to
        a columnar ``markers.npz`` (int64 type codes + interned vocabulary +
        sources).  Embeddings keep their dtype in both layouts.
        """
        if layout == "npz":
            np.savez(
                path,
                embeddings=self.marker_matrix(),
                type_names=np.asarray(self.marker_type_names(), dtype=object),
                sources=np.asarray(self._sources, dtype=object),
                dim=np.asarray([self.dim]),
            )
            return path
        if layout == "raw":
            directory = Path(path)
            directory.mkdir(parents=True, exist_ok=True)
            np.save(directory / "embeddings.npy", np.ascontiguousarray(self.marker_matrix()))
            np.savez(
                directory / "markers.npz",
                codes=self.marker_type_codes(),
                vocabulary=np.asarray(self._vocabulary_list, dtype=object),
                sources=np.asarray(self._sources, dtype=object),
                dim=np.asarray([self.dim]),
            )
            return path
        raise ValueError(f"unknown TypeSpace layout {layout!r}: valid layouts are npz, raw")

    @classmethod
    def load(
        cls,
        path: str,
        approximate_index: bool = False,
        index_kind: Optional[str] = None,
        index_params: Optional[dict] = None,
        mmap: bool = False,
    ) -> "TypeSpace":
        """Restore a space saved with :meth:`save` in one bulk load.

        An ``.npz`` archive restores with a single :meth:`add_markers` call,
        so the storage is allocated once and the index is built at most once
        — never once per marker.  A raw-layout directory adopts its arrays
        directly; with ``mmap=True`` the marker matrix is memory-mapped
        read-only (``mmap_mode="r"``) — no full-matrix copy, and concurrent
        loaders share the same physical pages.  The first
        :meth:`add_markers` on a mapped space promotes the matrix to private
        writable storage (one copy, the on-disk file is never touched).  The
        stored embedding dtype is preserved either way.
        """
        source = Path(path)
        if source.is_dir():
            return cls._load_raw(source, approximate_index, index_kind, index_params, mmap)
        if mmap:
            raise ValueError(
                "mmap=True needs the raw directory layout (save(path, layout='raw')); "
                "zip-compressed .npz archives cannot be memory-mapped"
            )
        with np.load(path, allow_pickle=True) as archive:
            dim = int(archive["dim"][0])
            embeddings = archive["embeddings"]
            dtype = np.float32 if embeddings.dtype == np.float32 else np.float64
            space = cls(
                dim,
                approximate_index=approximate_index,
                dtype=dtype,
                index_kind=index_kind,
                index_params=index_params,
            )
            type_names = [str(name) for name in archive["type_names"]]
            sources = [str(source) for source in archive["sources"]]
            space.add_markers(type_names, embeddings.reshape(len(type_names), dim), source=sources)
        return space

    @classmethod
    def _load_raw(
        cls,
        directory: Path,
        approximate_index: bool,
        index_kind: Optional[str],
        index_params: Optional[dict],
        mmap: bool,
    ) -> "TypeSpace":
        """Adopt a raw-layout directory's arrays (optionally memory-mapped)."""
        embeddings = np.load(directory / "embeddings.npy", mmap_mode="r" if mmap else None)
        with np.load(directory / "markers.npz", allow_pickle=True) as archive:
            dim = int(archive["dim"][0])
            codes = np.ascontiguousarray(archive["codes"], dtype=np.int64)
            vocabulary = [str(name) for name in archive["vocabulary"]]
            sources = [str(source) for source in archive["sources"]]
        if embeddings.ndim != 2 or embeddings.shape != (len(codes), dim):
            raise ValueError(
                f"raw TypeSpace at {directory} is inconsistent: embeddings shape "
                f"{embeddings.shape} does not match {len(codes)} markers of dim {dim}"
            )
        if len(codes) and codes.max(initial=-1) >= len(vocabulary):
            raise ValueError(f"raw TypeSpace at {directory} has codes outside its vocabulary")
        dtype = np.float32 if embeddings.dtype == np.float32 else np.float64
        space = cls(
            dim,
            approximate_index=approximate_index,
            dtype=dtype,
            index_kind=index_kind,
            index_params=index_params,
        )
        for name in vocabulary:
            space._intern(name)
        # Adopt the arrays as-is: the (possibly memory-mapped, read-only)
        # matrix becomes the row storage with zero copies.  Growth reallocates
        # (len == size, so any extension exceeds capacity), which is exactly
        # the copy-on-extend promotion a mapped space needs.
        space._embeddings = embeddings
        space._codes = codes
        space._sources = sources
        space._size = len(codes)
        return space
