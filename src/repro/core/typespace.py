"""The TypeSpace and its type map (Sec. 4.2).

After training, the encoder ``e(·)`` maps symbols to type embeddings but
does not itself know any types.  The *type map* ``τ_map`` pairs the
embeddings of symbols with **known** types (the markers) with those types;
prediction is then a k-nearest-neighbour query against the markers (Eq. 5).

Because the map is data, not parameters, it can be extended at any time with
new types — including types never seen during training — which is how
Typilus supports an open type vocabulary without retraining.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.knn import NearestNeighbourIndex, build_index


@dataclass
class TypeMarker:
    """One entry of the type map: an embedding labelled with its true type."""

    type_name: str
    embedding: np.ndarray
    source: str = ""  # provenance (filename / split), useful for analysis


class TypeSpace:
    """A collection of type markers plus a nearest-neighbour index over them."""

    def __init__(self, dim: int, approximate_index: bool = False) -> None:
        self.dim = dim
        self.approximate_index = approximate_index
        self._markers: list[TypeMarker] = []
        self._index: Optional[NearestNeighbourIndex] = None

    # -- population ----------------------------------------------------------------

    def add_marker(self, type_name: str, embedding: np.ndarray, source: str = "") -> None:
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        if embedding.shape[0] != self.dim:
            raise ValueError(f"marker dimension {embedding.shape[0]} does not match TypeSpace dim {self.dim}")
        self._markers.append(TypeMarker(type_name=type_name, embedding=embedding, source=source))
        self._index = None  # the index is rebuilt lazily

    def add_markers(self, type_names: Sequence[str], embeddings: np.ndarray, source: str = "") -> None:
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if len(type_names) != len(embeddings):
            raise ValueError("type_names and embeddings must have the same length")
        for type_name, embedding in zip(type_names, embeddings):
            self.add_marker(type_name, embedding, source=source)

    # -- queries ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._markers)

    @property
    def markers(self) -> list[TypeMarker]:
        return list(self._markers)

    def known_types(self) -> set[str]:
        return {marker.type_name for marker in self._markers}

    def type_counts(self) -> Counter:
        return Counter(marker.type_name for marker in self._markers)

    def marker_matrix(self) -> np.ndarray:
        if not self._markers:
            return np.zeros((0, self.dim))
        return np.stack([marker.embedding for marker in self._markers])

    def index(self) -> NearestNeighbourIndex:
        """The (lazily rebuilt) spatial index over the markers."""
        if self._index is None:
            self._index = build_index(self.marker_matrix(), approximate=self.approximate_index)
        return self._index

    def nearest(self, embedding: np.ndarray, k: int) -> list[tuple[str, float]]:
        """The ``k`` nearest markers of ``embedding``: ``(type, L1 distance)``."""
        result = self.index().query(np.asarray(embedding, dtype=np.float64), k)
        return [(self._markers[int(i)].type_name, float(d)) for i, d in zip(result.indices, result.distances)]

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str) -> str:
        """Persist markers to an ``.npz`` file."""
        np.savez(
            path,
            embeddings=self.marker_matrix(),
            type_names=np.asarray([marker.type_name for marker in self._markers], dtype=object),
            sources=np.asarray([marker.source for marker in self._markers], dtype=object),
            dim=np.asarray([self.dim]),
        )
        return path

    @classmethod
    def load(cls, path: str, approximate_index: bool = False) -> "TypeSpace":
        with np.load(path, allow_pickle=True) as archive:
            dim = int(archive["dim"][0])
            space = cls(dim, approximate_index=approximate_index)
            embeddings = archive["embeddings"]
            type_names = archive["type_names"]
            sources = archive["sources"]
            for type_name, embedding, source in zip(type_names, embeddings, sources):
                space.add_marker(str(type_name), embedding, source=str(source))
        return space
