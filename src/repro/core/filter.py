"""Type-checker filtering of predictions (the right-hand side of Fig. 1).

The last stage of Typilus runs the candidate predictions through an optional
type checker and discards the ones that introduce type errors.  The filter
below walks a symbol's ranked candidates in order of decreasing probability
and returns the first candidate the checker accepts, together with what was
rejected on the way — which is exactly what the tool would surface to a
developer.

For project-scale runs :meth:`TypeCheckedFilter.filter_many` filters every
symbol of one file in a single pass: the file's baseline diagnostics are
computed once and shared, and checker verdicts are cached per unique
``(candidate type, symbol kind)`` pair rather than re-derived per symbol —
the dominant cost of annotating a file is re-checking the same handful of
common types over and over, so one verdict per candidate covers the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.checker.checker import CheckerMode
from repro.checker.errors import CheckResult
from repro.checker.harness import PredictionChecker
from repro.core.predictor import TypePrediction
from repro.graph.nodes import SymbolKind


@dataclass
class FilteredSuggestion:
    """The outcome of filtering one symbol's candidate list."""

    scope: str
    name: str
    kind: SymbolKind
    accepted_type: Optional[str]
    accepted_confidence: float
    rejected: list[tuple[str, str]] = field(default_factory=list)  # (type, reason)

    @property
    def has_suggestion(self) -> bool:
        return self.accepted_type is not None


@dataclass
class FilterRequest:
    """One symbol of a file whose ranked candidates should be filtered."""

    scope: str
    name: str
    kind: SymbolKind
    prediction: TypePrediction
    original_annotation: Optional[str] = None


@dataclass
class _CandidateVerdict:
    """A cached checker verdict for one (type, symbol kind) candidate."""

    ok: bool
    skipped: bool
    reason: str


class TypeCheckedFilter:
    """Filters kNN predictions through the optional type checker."""

    def __init__(
        self,
        mode: CheckerMode = CheckerMode.STRICT,
        max_candidates: int = 3,
        confidence_threshold: float = 0.0,
    ) -> None:
        self.mode = mode
        self.max_candidates = max_candidates
        self.confidence_threshold = confidence_threshold
        self._checker = PredictionChecker(mode=mode)

    def filter(
        self,
        source: str,
        scope: str,
        name: str,
        kind: SymbolKind,
        prediction: TypePrediction,
        original_annotation: Optional[str] = None,
    ) -> FilteredSuggestion:
        """Return the highest-probability candidate that passes type checking."""
        request = FilterRequest(scope=scope, name=name, kind=kind, prediction=prediction,
                                original_annotation=original_annotation)
        return self.filter_many(source, [request])[0]

    def filter_many(self, source: str, requests: Sequence[FilterRequest]) -> list[FilteredSuggestion]:
        """Filter every symbol of one file, sharing checker work across symbols.

        The baseline check of ``source`` runs once for the whole batch, and
        each unique ``(candidate type, symbol kind)`` is checked against the
        file only the first time it appears; later symbols carrying the same
        candidate reuse the cached verdict.  (The verdict of inserting a type
        at one symbol of a kind thus stands in for its siblings of the same
        kind in the file — the batch-throughput trade-off of the engine.)
        """
        baseline: Optional[CheckResult] = None
        verdicts: dict[tuple[str, str], _CandidateVerdict] = {}
        filtered: list[FilteredSuggestion] = []
        for request in requests:
            suggestion = FilteredSuggestion(
                scope=request.scope, name=request.name, kind=request.kind,
                accepted_type=None, accepted_confidence=0.0,
            )
            for candidate_type, probability in request.prediction.top(self.max_candidates):
                if probability < self.confidence_threshold:
                    suggestion.rejected.append((candidate_type, "below confidence threshold"))
                    continue
                if candidate_type in ("Any", "None"):
                    suggestion.rejected.append((candidate_type, "uninformative type"))
                    continue
                key = (candidate_type, request.kind.value)
                verdict = verdicts.get(key)
                if verdict is None:
                    if baseline is None:
                        baseline = self._checker.baseline(source)
                    outcome = self._checker.check_prediction(
                        source, request.scope, request.name, request.kind, candidate_type,
                        original_annotation=request.original_annotation,
                        baseline_result=baseline,
                    )
                    if outcome.skipped:
                        verdict = _CandidateVerdict(ok=False, skipped=True, reason=outcome.reason or "skipped")
                        # A type-level skip (unparsable/Any) holds for every
                        # symbol; a skip because *this* symbol could not be
                        # rewritten is symbol-specific, so don't cache it.
                        if outcome.type_level_skip:
                            verdicts[key] = verdict
                    elif outcome.ok:
                        verdict = _CandidateVerdict(ok=True, skipped=False, reason="")
                        verdicts[key] = verdict
                    else:
                        verdict = _CandidateVerdict(
                            ok=False, skipped=False, reason=f"{outcome.introduced_errors} type error(s)"
                        )
                        verdicts[key] = verdict
                if verdict.ok:
                    suggestion.accepted_type = candidate_type
                    suggestion.accepted_confidence = probability
                    break
                suggestion.rejected.append((candidate_type, verdict.reason))
            filtered.append(suggestion)
        return filtered
