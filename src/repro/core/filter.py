"""Type-checker filtering of predictions (the right-hand side of Fig. 1).

The last stage of Typilus runs the candidate predictions through an optional
type checker and discards the ones that introduce type errors.  The filter
below walks a symbol's ranked candidates in order of decreasing probability
and returns the first candidate the checker accepts, together with what was
rejected on the way — which is exactly what the tool would surface to a
developer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.checker.checker import CheckerMode
from repro.checker.harness import PredictionChecker
from repro.core.predictor import TypePrediction
from repro.graph.nodes import SymbolKind


@dataclass
class FilteredSuggestion:
    """The outcome of filtering one symbol's candidate list."""

    scope: str
    name: str
    kind: SymbolKind
    accepted_type: Optional[str]
    accepted_confidence: float
    rejected: list[tuple[str, str]] = field(default_factory=list)  # (type, reason)

    @property
    def has_suggestion(self) -> bool:
        return self.accepted_type is not None


class TypeCheckedFilter:
    """Filters kNN predictions through the optional type checker."""

    def __init__(
        self,
        mode: CheckerMode = CheckerMode.STRICT,
        max_candidates: int = 3,
        confidence_threshold: float = 0.0,
    ) -> None:
        self.mode = mode
        self.max_candidates = max_candidates
        self.confidence_threshold = confidence_threshold
        self._checker = PredictionChecker(mode=mode)

    def filter(
        self,
        source: str,
        scope: str,
        name: str,
        kind: SymbolKind,
        prediction: TypePrediction,
        original_annotation: Optional[str] = None,
    ) -> FilteredSuggestion:
        """Return the highest-probability candidate that passes type checking."""
        suggestion = FilteredSuggestion(scope=scope, name=name, kind=kind, accepted_type=None, accepted_confidence=0.0)
        for candidate_type, probability in prediction.top(self.max_candidates):
            if probability < self.confidence_threshold:
                suggestion.rejected.append((candidate_type, "below confidence threshold"))
                continue
            if candidate_type in ("Any", "None"):
                suggestion.rejected.append((candidate_type, "uninformative type"))
                continue
            outcome = self._checker.check_prediction(
                source, scope, name, kind, candidate_type, original_annotation=original_annotation
            )
            if outcome.skipped:
                suggestion.rejected.append((candidate_type, outcome.reason or "skipped"))
                continue
            if outcome.ok:
                suggestion.accepted_type = candidate_type
                suggestion.accepted_confidence = probability
                return suggestion
            suggestion.rejected.append((candidate_type, f"{outcome.introduced_errors} type error(s)"))
        return suggestion
