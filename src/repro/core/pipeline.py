"""End-to-end Typilus pipeline: the library's primary public API.

A :class:`TypilusPipeline` owns a trained symbol encoder, its TypeSpace and a
kNN predictor, and exposes the workflow of Fig. 1:

* :meth:`TypilusPipeline.fit` — train an encoder on a dataset with one of the
  paper's losses and populate the type map;
* :meth:`predict_split` / :meth:`evaluate_split` — score a held-out split
  against the ground-truth annotations;
* :meth:`suggest_for_source` — the developer-facing path: take a (partially
  annotated) Python file, embed its symbols, predict candidate types and
  filter them through the optional type checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.checker.checker import CheckerMode
from repro.core.filter import FilteredSuggestion, TypeCheckedFilter
from repro.core.losses import ClassificationHead
from repro.core.metrics import EvaluatedPrediction, MetricSummary, evaluate_prediction, summarise
from repro.core.predictor import KNNTypePredictor, TypePrediction
from repro.core.trainer import LossKind, Trainer, TrainingConfig, TrainingResult
from repro.core.typespace import TypeSpace
from repro.corpus.dataset import AnnotatedSymbol, DatasetSplit, TypeAnnotationDataset
from repro.graph.builder import GraphBuilder
from repro.graph.edges import EdgeKind
from repro.graph.nodes import NodeKind, SymbolInfo
from repro.models.base import SymbolEncoder
from repro.models.encoder_init import TokenVocabulary, build_initializer
from repro.models.ggnn import GGNNEncoder, NameOnlyEncoder
from repro.models.path import PathEncoder
from repro.models.seq import SequenceEncoder
from repro.types.normalize import is_informative
from repro.utils.rng import SeededRNG


@dataclass
class EncoderConfig:
    """How to construct a symbol encoder."""

    family: str = "graph"  # "graph" | "sequence" | "path" | "names"
    hidden_dim: int = 32
    gnn_steps: int = 4
    node_init: str = "subtoken"  # "subtoken" | "token" | "character"
    edge_kinds: Optional[Sequence[EdgeKind]] = None
    max_tokens: int = 192
    seed: int = 29


def build_encoder(dataset: TypeAnnotationDataset, config: Optional[EncoderConfig] = None) -> SymbolEncoder:
    """Construct a fresh encoder of the requested family for a dataset."""
    config = config or EncoderConfig()
    rng = SeededRNG(config.seed)

    token_vocabulary: Optional[TokenVocabulary] = None
    if config.node_init == "token":
        texts = [node.text for graph in dataset.train.graphs for node in graph.nodes]
        token_vocabulary = TokenVocabulary.from_texts(texts)
    initializer = build_initializer(
        config.node_init,
        config.hidden_dim,
        rng.fork(1),
        subtoken_vocabulary=dataset.subtokens,
        token_vocabulary=token_vocabulary,
    )

    if config.family == "graph":
        return GGNNEncoder(
            initializer,
            config.hidden_dim,
            rng.fork(2),
            num_steps=config.gnn_steps,
            edge_kinds=config.edge_kinds,
        )
    if config.family == "names":
        return NameOnlyEncoder(initializer, config.hidden_dim, rng.fork(2))
    if config.family == "sequence":
        return SequenceEncoder(initializer, config.hidden_dim, rng.fork(2), max_tokens=config.max_tokens)
    if config.family == "path":
        return PathEncoder(initializer, config.hidden_dim, rng.fork(2))
    raise ValueError(f"unknown encoder family {config.family!r}")


@dataclass
class SymbolSuggestion:
    """A filtered type suggestion for one symbol of a user-supplied file."""

    name: str
    scope: str
    kind: str
    existing_annotation: Optional[str]
    prediction: TypePrediction
    filtered: Optional[FilteredSuggestion] = None

    @property
    def suggested_type(self) -> Optional[str]:
        if self.filtered is not None:
            return self.filtered.accepted_type
        return self.prediction.top_type

    @property
    def confidence(self) -> float:
        if self.filtered is not None and self.filtered.has_suggestion:
            return self.filtered.accepted_confidence
        return self.prediction.confidence

    @property
    def disagrees_with_existing(self) -> bool:
        """Whether the suggestion contradicts the human-written annotation.

        This is the signal behind the paper's Sec. 7 finding of incorrect
        annotations in fairseq/allennlp: a confident prediction that differs
        from the existing annotation is worth a human look.
        """
        return (
            self.existing_annotation is not None
            and self.suggested_type is not None
            and self.suggested_type != self.existing_annotation
        )


class TypilusPipeline:
    """A trained Typilus model bundled with its TypeSpace and predictor."""

    def __init__(
        self,
        dataset: TypeAnnotationDataset,
        encoder: SymbolEncoder,
        training_result: TrainingResult,
        type_space: TypeSpace,
        knn_k: int = 10,
        knn_p: float = 1.0,
    ) -> None:
        self.dataset = dataset
        self.encoder = encoder
        self.training_result = training_result
        self.type_space = type_space
        self.predictor = KNNTypePredictor(type_space, k=knn_k, p=knn_p)
        self._graph_builder = GraphBuilder()

    # -- training ------------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        dataset: TypeAnnotationDataset,
        encoder_config: Optional[EncoderConfig] = None,
        loss_kind: LossKind = LossKind.TYPILUS,
        training_config: Optional[TrainingConfig] = None,
        knn_k: int = 10,
        knn_p: float = 1.0,
        verbose: bool = False,
    ) -> "TypilusPipeline":
        """Train an encoder and build the TypeSpace in one call."""
        encoder = build_encoder(dataset, encoder_config)
        trainer = Trainer(encoder, dataset, loss_kind=loss_kind, config=training_config)
        result = trainer.train(verbose=verbose)
        space = trainer.build_type_space()
        return cls(dataset, encoder, result, space, knn_k=knn_k, knn_p=knn_p)

    # -- split-level prediction --------------------------------------------------------------

    def _embed_split(self, split: DatasetSplit) -> tuple[np.ndarray, list[AnnotatedSymbol]]:
        trainer = Trainer.__new__(Trainer)  # reuse the embedding helper without re-initialising
        trainer.encoder = self.encoder
        trainer.dataset = self.dataset
        return Trainer.embed_split(trainer, split)

    def predict_split(self, split: DatasetSplit) -> list[tuple[AnnotatedSymbol, TypePrediction]]:
        """kNN predictions for every supervised symbol of a split."""
        embeddings, samples = self._embed_split(split)
        predictions = self.predictor.predict_batch(embeddings)
        return list(zip(samples, predictions))

    def evaluate_split(self, split: DatasetSplit) -> tuple[MetricSummary, list[EvaluatedPrediction]]:
        """Exact / up-to-parametric / neutral metrics over a split."""
        evaluated: list[EvaluatedPrediction] = []
        for sample, prediction in self.predict_split(split):
            evaluated.append(
                evaluate_prediction(
                    prediction.top_type,
                    sample.annotation,
                    prediction.confidence,
                    self.dataset.lattice,
                    kind=sample.kind,
                )
            )
        return summarise(evaluated), evaluated

    # -- developer-facing suggestion -----------------------------------------------------------

    def suggest_for_source(
        self,
        source: str,
        filename: str = "<user>",
        use_type_checker: bool = True,
        checker_mode: CheckerMode = CheckerMode.STRICT,
        confidence_threshold: float = 0.0,
        include_annotated: bool = True,
    ) -> list[SymbolSuggestion]:
        """Suggest types for the symbols of an arbitrary Python file.

        The file may be partially annotated; existing annotations are used
        only for reporting disagreements, never as model input (the graph
        builder erases them).
        """
        graph = self._graph_builder.build(source, filename=filename)
        symbols: list[SymbolInfo] = [
            symbol
            for symbol in graph.symbols
            if include_annotated or symbol.annotation is None
        ]
        if not symbols:
            return []
        embeddings = self.encoder.encode([graph], [[symbol.node_index for symbol in symbols]])
        suggestions: list[SymbolSuggestion] = []
        checker_filter = TypeCheckedFilter(mode=checker_mode, confidence_threshold=confidence_threshold)
        for symbol, embedding in zip(symbols, embeddings.data):
            prediction = self.predictor.predict(embedding)
            if prediction.confidence < confidence_threshold:
                continue
            filtered = None
            if use_type_checker and prediction.candidates:
                filtered = checker_filter.filter(
                    source,
                    symbol.scope,
                    symbol.name,
                    symbol.kind,
                    prediction,
                    original_annotation=symbol.annotation,
                )
            suggestions.append(
                SymbolSuggestion(
                    name=symbol.name,
                    scope=symbol.scope,
                    kind=symbol.kind.value,
                    existing_annotation=symbol.annotation if symbol.annotation and is_informative(symbol.annotation) else None,
                    prediction=prediction,
                    filtered=filtered,
                )
            )
        return suggestions

    def find_annotation_disagreements(self, source: str, confidence_threshold: float = 0.8) -> list[SymbolSuggestion]:
        """Confidently-predicted types that contradict existing annotations (Sec. 7)."""
        suggestions = self.suggest_for_source(
            source, use_type_checker=True, confidence_threshold=confidence_threshold, include_annotated=True
        )
        return [s for s in suggestions if s.disagrees_with_existing and s.confidence >= confidence_threshold]
