"""End-to-end Typilus pipeline: the library's primary public API.

A :class:`TypilusPipeline` owns a trained symbol encoder, its TypeSpace and a
kNN predictor, and exposes the workflow of Fig. 1:

* :meth:`TypilusPipeline.fit` — train an encoder on a dataset with one of the
  paper's losses and populate the type map;
* :meth:`predict_split` / :meth:`evaluate_split` — score a held-out split
  against the ground-truth annotations;
* :meth:`suggest_for_sources` — the developer-facing path: take a set of
  (partially annotated) Python files, embed all their symbols in one batched
  pass, predict candidate types for every symbol at once and filter them
  through the optional type checker (:meth:`suggest_for_source` is the
  single-file view of the same path);
* :meth:`save` / :meth:`load` — persist a trained pipeline (encoder weights,
  vocabularies, TypeSpace markers and kNN settings) so it can serve
  suggestions without re-training.
"""

from __future__ import annotations

import errno
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.checker.checker import CheckerMode
from repro.core.embedder import SymbolEmbedder
from repro.core.filter import FilteredSuggestion, FilterRequest, TypeCheckedFilter
from repro.core.metrics import EvaluatedPrediction, MetricSummary, evaluate_prediction, summarise
from repro.core.predictor import KNNTypePredictor, TypePrediction
from repro.core.trainer import LossKind, Trainer, TrainingConfig, TrainingResult
from repro.core.typespace import TypeSpace
from repro.corpus.dataset import AnnotatedSymbol, DatasetSplit, TypeAnnotationDataset
from repro.corpus.ingest import IngestConfig, ingest_sources
from repro.graph.builder import GraphBuildError, GraphBuilder
from repro.graph.codegraph import CodeGraph
from repro.graph.edges import EdgeKind
from repro.graph.nodes import SymbolInfo
from repro.graph.subtokens import SubtokenVocabulary
from repro.models.base import SymbolEncoder
from repro.models.encoder_init import (
    CharCNNNodeInitializer,
    SubtokenNodeInitializer,
    TokenNodeInitializer,
    TokenVocabulary,
    build_initializer,
)
from repro.models.ggnn import GGNNEncoder, NameOnlyEncoder
from repro.models.path import PathEncoder
from repro.models.seq import SequenceEncoder
from repro.nn import serialization
from repro.types.lattice import TypeLattice
from repro.types.normalize import is_informative
from repro.utils.rng import SeededRNG

#: On-disk format of :meth:`TypilusPipeline.save` directories.
PIPELINE_FORMAT_VERSION = 1


@dataclass
class EncoderConfig:
    """How to construct a symbol encoder."""

    family: str = "graph"  # "graph" | "sequence" | "path" | "names"
    hidden_dim: int = 32
    gnn_steps: int = 4
    node_init: str = "subtoken"  # "subtoken" | "token" | "character"
    edge_kinds: Optional[Sequence[EdgeKind]] = None
    use_reverse_edges: bool = True
    max_tokens: int = 192
    seed: int = 29


def build_encoder(dataset: TypeAnnotationDataset, config: Optional[EncoderConfig] = None) -> SymbolEncoder:
    """Construct a fresh encoder of the requested family for a dataset."""
    config = config or EncoderConfig()

    token_vocabulary: Optional[TokenVocabulary] = None
    if config.node_init == "token":
        texts = [text for graph in dataset.train.graphs for text in graph.node_texts()]
        token_vocabulary = TokenVocabulary.from_texts(texts)
    return build_encoder_from_vocabularies(config, dataset.subtokens, token_vocabulary)


def build_encoder_from_vocabularies(
    config: EncoderConfig,
    subtoken_vocabulary: Optional[SubtokenVocabulary],
    token_vocabulary: Optional[TokenVocabulary] = None,
) -> SymbolEncoder:
    """Construct an encoder directly from vocabularies (no dataset needed).

    This is the path pipeline persistence uses: a restored vocabulary plus the
    saved configuration rebuilds an encoder of identical shape, whose weights
    are then overwritten from the archive.
    """
    rng = SeededRNG(config.seed)
    initializer = build_initializer(
        config.node_init,
        config.hidden_dim,
        rng.fork(1),
        subtoken_vocabulary=subtoken_vocabulary,
        token_vocabulary=token_vocabulary,
    )
    if config.family == "graph":
        return GGNNEncoder(
            initializer,
            config.hidden_dim,
            rng.fork(2),
            num_steps=config.gnn_steps,
            edge_kinds=config.edge_kinds,
            use_reverse_edges=config.use_reverse_edges,
        )
    if config.family == "names":
        return NameOnlyEncoder(initializer, config.hidden_dim, rng.fork(2))
    if config.family == "sequence":
        return SequenceEncoder(initializer, config.hidden_dim, rng.fork(2), max_tokens=config.max_tokens)
    if config.family == "path":
        return PathEncoder(initializer, config.hidden_dim, rng.fork(2))
    raise ValueError(f"unknown encoder family {config.family!r}")


@dataclass
class SymbolSuggestion:
    """A filtered type suggestion for one symbol of a user-supplied file."""

    name: str
    scope: str
    kind: str
    existing_annotation: Optional[str]
    prediction: TypePrediction
    filtered: Optional[FilteredSuggestion] = None

    @property
    def suggested_type(self) -> Optional[str]:
        if self.filtered is not None:
            return self.filtered.accepted_type
        return self.prediction.top_type

    @property
    def confidence(self) -> float:
        if self.filtered is not None and self.filtered.has_suggestion:
            return self.filtered.accepted_confidence
        return self.prediction.confidence

    @property
    def disagrees_with_existing(self) -> bool:
        """Whether the suggestion contradicts the human-written annotation.

        This is the signal behind the paper's Sec. 7 finding of incorrect
        annotations in fairseq/allennlp: a confident prediction that differs
        from the existing annotation is worth a human look.
        """
        return (
            self.existing_annotation is not None
            and self.suggested_type is not None
            and self.suggested_type != self.existing_annotation
        )


class TypilusPipeline:
    """A trained Typilus model bundled with its TypeSpace and predictor."""

    def __init__(
        self,
        dataset: Optional[TypeAnnotationDataset],
        encoder: SymbolEncoder,
        training_result: Optional[TrainingResult],
        type_space: TypeSpace,
        knn_k: int = 10,
        knn_p: float = 1.0,
    ) -> None:
        self.dataset = dataset
        self.encoder = encoder
        self.training_result = training_result
        self.type_space = type_space
        self.predictor = KNNTypePredictor(type_space, k=knn_k, p=knn_p)
        self.embedder = SymbolEmbedder(encoder)
        self._graph_builder = GraphBuilder()

    # -- training ------------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        dataset: TypeAnnotationDataset,
        encoder_config: Optional[EncoderConfig] = None,
        loss_kind: LossKind = LossKind.TYPILUS,
        training_config: Optional[TrainingConfig] = None,
        knn_k: int = 10,
        knn_p: float = 1.0,
        index_kind: Optional[str] = None,
        index_params: Optional[dict] = None,
        verbose: bool = False,
    ) -> "TypilusPipeline":
        """Train an encoder and build the TypeSpace in one call.

        ``index_kind``/``index_params`` select the TypeSpace's spatial index
        (``"exact"``/``"lsh"``/``"ivf"``; validated up front) — e.g.
        ``index_kind="ivf", index_params={"nlist": 256, "nprobe": 8}`` for the
        sub-linear serving tier.
        """
        encoder = build_encoder(dataset, encoder_config)
        trainer = Trainer(encoder, dataset, loss_kind=loss_kind, config=training_config)
        result = trainer.train(verbose=verbose)
        space = trainer.build_type_space(index_kind=index_kind, index_params=index_params)
        return cls(dataset, encoder, result, space, knn_k=knn_k, knn_p=knn_p)

    # -- split-level prediction --------------------------------------------------------------

    def predict_split(self, split: DatasetSplit) -> list[tuple[AnnotatedSymbol, TypePrediction]]:
        """kNN predictions for every supervised symbol of a split."""
        embeddings, samples = self.embedder.embed_split(split)
        predictions = self.predictor.predict_batch(embeddings)
        return list(zip(samples, predictions))

    def evaluate_split(self, split: DatasetSplit) -> tuple[MetricSummary, list[EvaluatedPrediction]]:
        """Exact / up-to-parametric / neutral metrics over a split."""
        lattice = self.dataset.lattice if self.dataset is not None else TypeLattice()
        evaluated: list[EvaluatedPrediction] = []
        for sample, prediction in self.predict_split(split):
            evaluated.append(
                evaluate_prediction(
                    prediction.top_type,
                    sample.annotation,
                    prediction.confidence,
                    lattice,
                    kind=sample.kind,
                )
            )
        return summarise(evaluated), evaluated

    # -- developer-facing suggestion -----------------------------------------------------------

    def suggest_for_sources(
        self,
        sources: Mapping[str, str],
        use_type_checker: bool = True,
        checker_mode: CheckerMode = CheckerMode.STRICT,
        confidence_threshold: float = 0.0,
        include_annotated: bool = True,
        skip_unparsable: bool = False,
        ingest: Optional[IngestConfig] = None,
    ) -> dict[str, list[SymbolSuggestion]]:
        """Suggest types for every symbol of a whole set of files in one pass.

        All files' symbols are embedded together (batched across files by the
        :class:`SymbolEmbedder`) and scored with a single vectorized kNN
        prediction; the checker filter then runs per file with its verdicts
        cached per unique candidate.  Files that fail to parse raise
        :class:`~repro.graph.builder.GraphBuildError` unless
        ``skip_unparsable`` is set, in which case they are omitted from the
        result.

        Passing an ``ingest`` configuration routes graph extraction through
        :func:`~repro.corpus.ingest.ingest_sources`: files parse in parallel
        over a process pool and/or reuse the content-addressed graph cache.
        Suggestions are identical with or without it.

        Returns a dict mapping each (parsed) filename to its suggestions.
        """
        filenames: list[str] = []
        graphs: list[CodeGraph] = []
        symbols_per_file: list[list[SymbolInfo]] = []
        if ingest is not None:
            extracted_files, report = ingest_sources(dict(sources), ingest)
            if report.failed_files and not skip_unparsable:
                raise GraphBuildError(f"cannot parse {report.failed_files[0]}")
            graph_by_name = {extracted.filename: extracted.graph for extracted in extracted_files}
            built = [
                (filename, graph_by_name[filename]) for filename in sources if filename in graph_by_name
            ]
        else:
            built = []
            for filename, source in sources.items():
                try:
                    built.append((filename, self._graph_builder.build(source, filename=filename)))
                except GraphBuildError:
                    if skip_unparsable:
                        continue
                    raise
        for filename, graph in built:
            filenames.append(filename)
            graphs.append(graph)
            symbols_per_file.append(
                [symbol for symbol in graph.symbols if include_annotated or symbol.annotation is None]
            )

        embeddings = self.embedder.embed_symbols(
            graphs, [[symbol.node_index for symbol in symbols] for symbols in symbols_per_file]
        )
        predictions = self.predictor.predict_batch(embeddings)

        checker_filter = TypeCheckedFilter(mode=checker_mode, confidence_threshold=confidence_threshold)
        results: dict[str, list[SymbolSuggestion]] = {}
        cursor = 0
        for filename, symbols in zip(filenames, symbols_per_file):
            file_predictions = predictions[cursor : cursor + len(symbols)]
            cursor += len(symbols)
            kept: list[tuple[SymbolInfo, TypePrediction]] = [
                (symbol, prediction)
                for symbol, prediction in zip(symbols, file_predictions)
                if prediction.confidence >= confidence_threshold
            ]
            filtered_by_position: dict[int, FilteredSuggestion] = {}
            if use_type_checker:
                requests = [
                    (position, FilterRequest(
                        scope=symbol.scope,
                        name=symbol.name,
                        kind=symbol.kind,
                        prediction=prediction,
                        original_annotation=symbol.annotation,
                    ))
                    for position, (symbol, prediction) in enumerate(kept)
                    if prediction.candidates
                ]
                filtered = checker_filter.filter_many(sources[filename], [request for _, request in requests])
                filtered_by_position = {position: outcome for (position, _), outcome in zip(requests, filtered)}
            suggestions: list[SymbolSuggestion] = []
            for position, (symbol, prediction) in enumerate(kept):
                suggestions.append(
                    SymbolSuggestion(
                        name=symbol.name,
                        scope=symbol.scope,
                        kind=symbol.kind.value,
                        existing_annotation=symbol.annotation
                        if symbol.annotation and is_informative(symbol.annotation)
                        else None,
                        prediction=prediction,
                        filtered=filtered_by_position.get(position),
                    )
                )
            results[filename] = suggestions
        return results

    def suggest_for_source(
        self,
        source: str,
        filename: str = "<user>",
        use_type_checker: bool = True,
        checker_mode: CheckerMode = CheckerMode.STRICT,
        confidence_threshold: float = 0.0,
        include_annotated: bool = True,
    ) -> list[SymbolSuggestion]:
        """Suggest types for the symbols of an arbitrary Python file.

        The file may be partially annotated; existing annotations are used
        only for reporting disagreements, never as model input (the graph
        builder erases them).  This is the single-file view of
        :meth:`suggest_for_sources`.
        """
        return self.suggest_for_sources(
            {filename: source},
            use_type_checker=use_type_checker,
            checker_mode=checker_mode,
            confidence_threshold=confidence_threshold,
            include_annotated=include_annotated,
        )[filename]

    # -- adaptation ------------------------------------------------------------------------

    def adapt_with_sources(
        self,
        type_name: str,
        sources: Mapping[str, str],
        provenance: str = "adaptation",
    ) -> int:
        """Extend the type map from annotated examples, without retraining.

        Every symbol in ``sources`` whose existing annotation is exactly
        ``type_name`` is embedded and added to the TypeSpace as a new marker
        (Sec. 4.2's open-vocabulary adaptation).  The markers are appended in
        one bulk call, which *extends* the space's columnar storage and its
        spatial index in place — the cost is proportional to the new markers,
        so a long-lived serving pipeline can adapt between requests.

        Returns the number of markers added.
        """
        graphs: list[CodeGraph] = []
        targets: list[list[int]] = []
        for filename, source in sources.items():
            graph = self._graph_builder.build(source, filename=filename)
            graphs.append(graph)
            targets.append(
                [symbol.node_index for symbol in graph.symbols if symbol.annotation == type_name]
            )
        embeddings = self.embedder.embed_symbols(graphs, targets)
        if len(embeddings):
            self.type_space.add_markers([type_name] * len(embeddings), embeddings, source=provenance)
        return len(embeddings)

    def find_annotation_disagreements(self, source: str, confidence_threshold: float = 0.8) -> list[SymbolSuggestion]:
        """Confidently-predicted types that contradict existing annotations (Sec. 7)."""
        suggestions = self.suggest_for_source(
            source, use_type_checker=True, confidence_threshold=confidence_threshold, include_annotated=True
        )
        return [s for s in suggestions if s.disagrees_with_existing and s.confidence >= confidence_threshold]

    # -- identity --------------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of everything that determines this pipeline's answers.

        Covers the encoder weights, the TypeSpace markers and the kNN
        settings.  Two pipelines with equal fingerprints produce identical
        suggestions for identical sources — the invariant behind the
        engine's incremental re-annotation cache.
        """
        digest = hashlib.sha256()
        for name, parameter in sorted(self.encoder.named_parameters()):
            values = np.ascontiguousarray(parameter.data, dtype=np.float64)
            digest.update(name.encode("utf-8"))
            digest.update(repr(values.shape).encode("utf-8"))
            digest.update(values.tobytes())
        if len(self.type_space):
            digest.update(np.ascontiguousarray(self.type_space.marker_matrix(), dtype=np.float64).tobytes())
        for type_name in self.type_space.marker_type_names():
            digest.update(type_name.encode("utf-8") + b"\x00")
        digest.update(f"{self.predictor.k}:{self.predictor.p}:{self.predictor.epsilon}".encode("utf-8"))
        return digest.hexdigest()

    # -- persistence -----------------------------------------------------------------------

    def save(self, path: Union[str, Path], typespace_layout: str = "npz") -> Path:
        """Persist the trained pipeline to a directory.

        The directory holds ``pipeline.json`` (encoder architecture,
        vocabularies, kNN settings and the index configuration),
        ``encoder.npz`` (weights, via :mod:`repro.nn.serialization`) and the
        type map's markers — as ``typespace.npz`` with the default
        ``typespace_layout="npz"``, or as a raw ``typespace/`` directory with
        ``typespace_layout="raw"``, whose marker matrix :meth:`load` then
        memory-maps instead of copying (the serving layout for large maps).
        :meth:`load` restores a pipeline that reproduces the saved model's
        predictions exactly, without a dataset or re-training.

        ``pipeline.json`` is written **last**, as a commit marker: weights
        and markers land on disk before the manifest does, so a reader that
        finds the manifest (e.g. the serving daemon's hot ``reload``) never
        observes a torn directory — a crash mid-save leaves a directory
        without a manifest, which :meth:`load` rejects with a clean error
        instead of loading half a model.

        (Exception: the "path" encoder family samples paths with a stateful
        RNG at inference, so its predictions vary run to run even without
        persistence; the graph/sequence/names families round-trip
        byte-identically.)
        """
        if typespace_layout not in ("npz", "raw"):
            raise ValueError(
                f"unknown typespace layout {typespace_layout!r}: valid layouts are npz, raw"
            )
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        serialization.save_modules(path / "encoder.npz", encoder=self.encoder)
        if typespace_layout == "raw":
            self.type_space.save(str(path / "typespace"), layout="raw")
        else:
            self.type_space.save(str(path / "typespace.npz"))
        manifest = {
            "format_version": PIPELINE_FORMAT_VERSION,
            "encoder": _describe_encoder(self.encoder),
            "knn": {"k": self.predictor.k, "p": self.predictor.p, "epsilon": self.predictor.epsilon},
            "approximate_index": self.type_space.approximate_index,
            "index": {"kind": self.type_space.index_kind, "params": self.type_space.index_params},
            "typespace_layout": typespace_layout,
        }
        (path / "pipeline.json").write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        return path

    @classmethod
    def peek_manifest(cls, path: Union[str, Path]) -> dict:
        """Read a saved pipeline's manifest without loading weights or markers.

        Serving front-ends use this to validate a model directory *before*
        spawning a fleet of workers against it (and to learn whether the
        typespace layout supports memory-mapping) at the cost of one small
        JSON read — no arrays are touched.  Raises the same errors
        :meth:`load` would for a torn directory or an unsupported version.
        The returned dict adds ``mmap_capable`` next to the stored fields.
        """
        path = Path(path)
        manifest_path = path / "pipeline.json"
        if not manifest_path.exists():
            raise FileNotFoundError(
                errno.ENOENT,
                f"no complete pipeline at {path}: pipeline.json is missing "
                "(save() writes it last, so this directory was never fully written)",
                str(manifest_path),
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        version = manifest.get("format_version")
        if version != PIPELINE_FORMAT_VERSION:
            raise ValueError(f"unsupported pipeline format version {version!r}")
        manifest["mmap_capable"] = manifest.get("typespace_layout", "npz") == "raw"
        return manifest

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        dataset: Optional[TypeAnnotationDataset] = None,
        mmap_typespace: Optional[bool] = None,
    ) -> "TypilusPipeline":
        """Restore a pipeline saved with :meth:`save`.

        The optional ``dataset`` re-attaches lattice/registry context for
        split evaluation; suggestion and annotation work without it.  A
        pipeline saved with ``typespace_layout="raw"`` memory-maps its marker
        matrix by default (``mmap_typespace=None`` → mmap when the layout
        supports it); pass ``mmap_typespace=False`` to force an in-RAM copy.
        The saved index kind/params are restored with the markers.
        """
        path = Path(path)
        # peek_manifest enforces the commit-marker invariant: save() writes
        # pipeline.json last, so a missing manifest means an unfinished (or
        # foreign) directory and an unsupported version fails before any
        # arrays are read.
        manifest = cls.peek_manifest(path)
        encoder = _encoder_from_description(manifest["encoder"])
        serialization.load_modules(path / "encoder.npz", encoder=encoder)
        encoder.eval()
        index = manifest.get("index")
        index_kind = index["kind"] if index else ("lsh" if manifest.get("approximate_index") else "exact")
        index_params = dict(index["params"]) if index else {}
        layout = manifest.get("typespace_layout", "npz")
        if layout == "raw":
            space = TypeSpace.load(
                str(path / "typespace"),
                index_kind=index_kind,
                index_params=index_params,
                mmap=mmap_typespace if mmap_typespace is not None else True,
            )
        else:
            if mmap_typespace:
                raise ValueError(
                    "this pipeline was saved with the npz typespace layout, which cannot "
                    "be memory-mapped; re-save with typespace_layout='raw'"
                )
            space = TypeSpace.load(
                str(path / "typespace.npz"), index_kind=index_kind, index_params=index_params
            )
        knn = manifest.get("knn", {})
        pipeline = cls(
            dataset,
            encoder,
            None,
            space,
            knn_k=int(knn.get("k", 10)),
            knn_p=float(knn.get("p", 1.0)),
        )
        pipeline.predictor.epsilon = float(knn.get("epsilon", pipeline.predictor.epsilon))
        return pipeline


# ---------------------------------------------------------------------------
# Encoder description: architecture + vocabularies as JSON-serializable data
# ---------------------------------------------------------------------------


def _describe_encoder(encoder: SymbolEncoder) -> dict:
    """Describe an encoder's architecture and vocabularies for persistence."""
    description: dict = {"hidden_dim": int(encoder.output_dim)}

    initializer = getattr(encoder, "initializer", None)
    if isinstance(initializer, SubtokenNodeInitializer):
        description["node_init"] = "subtoken"
        description["subtoken_vocabulary"] = list(initializer.vocabulary.tokens)
    elif isinstance(initializer, TokenNodeInitializer):
        description["node_init"] = "token"
        description["token_vocabulary"] = list(initializer.vocabulary.tokens)
    elif isinstance(initializer, CharCNNNodeInitializer):
        description["node_init"] = "character"
    else:
        raise ValueError(f"cannot persist encoder with initializer {type(initializer).__name__}")

    if isinstance(encoder, GGNNEncoder):
        description["family"] = "graph"
        description["gnn_steps"] = int(encoder.num_steps)
        description["edge_kinds"] = [kind.value for kind in encoder.edge_kinds]
        description["use_reverse_edges"] = bool(encoder.use_reverse_edges)
    elif isinstance(encoder, NameOnlyEncoder):
        description["family"] = "names"
    elif isinstance(encoder, SequenceEncoder):
        description["family"] = "sequence"
        description["max_tokens"] = int(encoder.max_tokens)
    elif isinstance(encoder, PathEncoder):
        description["family"] = "path"
    else:
        raise ValueError(f"cannot persist encoder of type {type(encoder).__name__}")
    return description


def _encoder_from_description(description: dict) -> SymbolEncoder:
    """Rebuild an encoder of identical shape from a saved description."""
    subtoken_vocabulary: Optional[SubtokenVocabulary] = None
    if "subtoken_vocabulary" in description:
        subtoken_vocabulary = SubtokenVocabulary.from_tokens(description["subtoken_vocabulary"])
    token_vocabulary: Optional[TokenVocabulary] = None
    if "token_vocabulary" in description:
        token_vocabulary = TokenVocabulary.from_token_list(description["token_vocabulary"])

    config = EncoderConfig(
        family=description["family"],
        hidden_dim=int(description["hidden_dim"]),
        gnn_steps=int(description.get("gnn_steps", 4)),
        node_init=description["node_init"],
        edge_kinds=[EdgeKind(value) for value in description["edge_kinds"]]
        if "edge_kinds" in description
        else None,
        use_reverse_edges=bool(description.get("use_reverse_edges", True)),
        max_tokens=int(description.get("max_tokens", 192)),
    )
    return build_encoder_from_vocabularies(config, subtoken_vocabulary, token_vocabulary)
