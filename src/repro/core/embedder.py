"""Batched symbol embedding shared by the trainer, the pipeline and the engine.

Embedding symbols — running the encoder over a set of program graphs and
gathering one type embedding per target symbol node — used to live inside
:class:`~repro.core.trainer.Trainer`, which forced inference-only callers to
fake a partially-initialised trainer.  :class:`SymbolEmbedder` owns that
logic directly: it needs nothing but an encoder, batches whole groups of
files into each forward pass, and is the single embedding path for training
(:meth:`embed_split`), split evaluation and project-scale annotation
(:meth:`embed_symbols`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.corpus.dataset import AnnotatedSymbol, DatasetSplit
from repro.graph.codegraph import CodeGraph
from repro.models.base import SymbolEncoder


class SymbolEmbedder:
    """Embeds target symbol nodes of program graphs in file-level batches."""

    def __init__(self, encoder: SymbolEncoder, batch_graphs: int = 16) -> None:
        self.encoder = encoder
        self.batch_graphs = batch_graphs

    @property
    def output_dim(self) -> int:
        return self.encoder.output_dim

    def embed_symbols(
        self,
        graphs: Sequence[CodeGraph],
        node_indices_per_graph: Sequence[Sequence[int]],
        batch_graphs: int | None = None,
    ) -> np.ndarray:
        """Embed the given target nodes of every graph, batching across files.

        Returns a ``(total_targets, output_dim)`` array whose rows follow the
        graphs in order, and within each graph the order of its node indices.
        """
        if len(graphs) != len(node_indices_per_graph):
            raise ValueError("graphs and node_indices_per_graph must have the same length")
        if batch_graphs is None:
            batch_graphs = self.batch_graphs
        self.encoder.eval()
        chunks: list[np.ndarray] = []
        for start in range(0, len(graphs), batch_graphs):
            graph_chunk = list(graphs[start : start + batch_graphs])
            target_chunk = [list(targets) for targets in node_indices_per_graph[start : start + batch_graphs]]
            if not any(target_chunk):
                continue
            chunks.append(self.encoder.encode(graph_chunk, target_chunk).data)
        if not chunks:
            return np.zeros((0, self.encoder.output_dim))
        return np.concatenate(chunks, axis=0)

    def embed_split(self, split: DatasetSplit, batch_graphs: int | None = None) -> tuple[np.ndarray, list[AnnotatedSymbol]]:
        """Embed every supervised symbol of a split (in dataset order)."""
        samples_by_graph = split.samples_by_graph()
        graph_indices = sorted(samples_by_graph)
        graphs = [split.graphs[index] for index in graph_indices]
        node_indices = [[sample.node_index for sample in samples_by_graph[index]] for index in graph_indices]
        ordered_samples = [sample for index in graph_indices for sample in samples_by_graph[index]]
        embeddings = self.embed_symbols(graphs, node_indices, batch_graphs=batch_graphs)
        return embeddings, ordered_samples
