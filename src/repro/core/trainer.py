"""Training loop for the type-prediction models.

The trainer is loss-agnostic so that the nine model/loss combinations of
Table 2 (``{Seq,Path,Graph} × {Class,Space,Typilus}``) all run through the
same code path:

* ``classification`` — Eq. 1 with a closed vocabulary head (``*2Class``);
* ``space`` — Eq. 3, pure deep similarity learning (``*2Space``);
* ``typilus`` — Eq. 4, the combined objective (``*-Typilus``).

Mini-batches are formed over *graphs* (files); all supervised symbols of the
selected graphs are encoded together, which is also how the similarity loss
obtains its in-batch positive/negative sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.core.dataloader import stream_batches
from repro.core.embedder import SymbolEmbedder
from repro.core.losses import (
    ClassificationHead,
    TypilusLoss,
    classification_loss,
    similarity_space_loss,
)
from repro.core.typespace import TypeSpace
from repro.corpus.dataset import AnnotatedSymbol, DatasetSplit, TypeAnnotationDataset
from repro.graph.codegraph import CodeGraph
from repro.graph.edges import EdgeKind
from repro.models.base import SymbolEncoder
from repro.models.batching import GraphBatch, SequenceBatch, token_view
from repro.models.featurize import TextFeatures
from repro.models.ggnn import GGNNEncoder, build_message_plan
from repro.core.parallel import WorkerTeam
from repro.nn.dtype import resolve_dtype
from repro.nn.optim import Adam, accumulate_gradients, capture_gradients, restore_gradients
from repro.nn.tensor import Tensor
from repro.utils.memory import peak_rss_bytes
from repro.utils.rng import SeededRNG
from repro.utils.timing import Stopwatch


class LossKind(str, Enum):
    """Which of the paper's objectives to optimise."""

    CLASSIFICATION = "classification"  # Eq. 1
    SPACE = "space"  # Eq. 3
    TYPILUS = "typilus"  # Eq. 4


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run (scaled down from the paper's)."""

    epochs: int = 10
    graphs_per_batch: int = 8
    max_symbols_per_batch: int = 256
    learning_rate: float = 5e-3
    gradient_clip: float = 5.0
    margin: float = 2.0
    lambda_classification: float = 1.0
    max_classification_types: Optional[int] = None
    seed: int = 17
    #: Floating dtype of parameters, activations and optimiser state.
    #: ``float32`` (the default) roughly doubles CPU throughput; ``float64``
    #: restores the historical double precision, in which the compiled and
    #: eager paths produce bit-identical loss trajectories.
    dtype: str = "float32"
    #: Precompile per-graph features and batch arrays before epoch 0 and
    #: assemble each epoch's batches from them (see :class:`BatchPlan`).
    #: ``False`` rebuilds every batch from node texts each epoch — the
    #: eager baseline path the throughput benchmark compares against.
    compile_batches: bool = True
    #: Out-of-core streaming: when set, compiled batches are assembled by a
    #: prefetch thread into a window of at most this many in-flight batches
    #: and dropped after use, so peak RSS is O(window) instead of O(corpus).
    #: ``None`` (the default) keeps the historical resident plan.  Assembly
    #: is pure, so any window size replays the resident float64 trajectory
    #: bit-for-bit.
    prefetch_batches: Optional[int] = None
    #: Data-parallel epochs: fork this many worker processes, each encoding
    #: and backpropagating a disjoint slice of every batch's graphs, with the
    #: per-graph gradient contributions reduced by the parent in graph order
    #: — the same association the serial path uses, so ``workers=N`` replays
    #: ``workers=1`` bit-for-bit.  Only the compiled graph family
    #: parallelises; other configurations silently run serially, as do hosts
    #: where ``fork`` is unavailable.
    workers: int = 1


@dataclass
class EpochStats:
    """Loss, timing and memory telemetry of one epoch."""

    epoch: int
    mean_loss: float
    num_batches: int
    seconds: float
    #: Peak resident set size of the process at the end of the epoch (a
    #: lifetime high-water mark, see :func:`repro.utils.memory.peak_rss_bytes`);
    #: ``None`` where the platform cannot report it.
    peak_rss_bytes: Optional[int] = None


@dataclass
class TrainingResult:
    """Everything a caller needs after training."""

    encoder: SymbolEncoder
    loss_kind: LossKind
    classification_head: Optional[ClassificationHead]
    typilus_loss: Optional[TypilusLoss]
    history: list[EpochStats] = field(default_factory=list)
    stopwatch: Stopwatch = field(default_factory=Stopwatch)

    @property
    def final_loss(self) -> float:
        return self.history[-1].mean_loss if self.history else float("nan")


@dataclass
class _CompiledGraph:
    """Per-graph arrays a :class:`BatchPlan` precomputes for GraphBatch families."""

    num_nodes: int
    node_texts: list[str]
    features: TextFeatures
    edges: dict[EdgeKind, np.ndarray]  # (num_edges, 2) graph-local pairs
    target_nodes: np.ndarray  # graph-local node index per sample, in sample order


@dataclass
class _CompiledSequence:
    """Per-graph arrays for the sequence (DeepTyper-style) family."""

    token_texts: list[str]
    features: TextFeatures
    occurrences: dict[int, list[int]]  # symbol node index -> sorted token positions
    target_nodes: list[int]  # node index per sample, in sample order


class BatchPlan:
    """Compile-once featurization and batch assembly for one dataset split.

    The eager trainer redoes three kinds of work on every batch of every
    epoch: re-tokenizing node texts into subtoken/token/char ids, re-merging
    node and edge lists into a disjoint union in pure Python, and re-deriving
    occurrence structures.  None of that depends on the epoch — only the
    *grouping* of graphs into batches changes (the per-epoch shuffle).

    A plan therefore featurizes and indexes every graph exactly once, before
    epoch 0 (reusing features persisted alongside the dataset shards when
    their vocabulary fingerprint matches), and assembles each epoch's batches
    by pure array concatenation.  Assembly follows the same graph order and
    sample prefixes as the eager path, so a float64 compiled run replays the
    eager float64 loss trajectory bit-for-bit.

    The path family resamples syntax paths per batch, so its batches cannot
    be precompiled; compiling a plan for it instead turns on the encoder's
    per-text feature memo (``supports_assembly`` stays ``False`` and the
    trainer keeps using the eager path, minus the repeated tokenization).

    ``lazy=True`` is the out-of-core mode: nothing is precompiled and
    nothing is retained — entries and assembled batches are built on demand
    and owned by the caller (the streaming prefetcher or a worker-side LRU),
    so plan memory no longer scales with the corpus.  Compilation itself is
    pure, so lazy and resident plans produce identical arrays.
    """

    def __init__(self, encoder: SymbolEncoder, split: DatasetSplit, lazy: bool = False) -> None:
        self.encoder = encoder
        self.split = split
        self.lazy = lazy
        self._graph_entries: dict[int, _CompiledGraph] = {}
        self._sequence_entries: dict[int, _CompiledSequence] = {}
        self._assembled: dict[int, object] = {}
        self._training: dict[int, object] = {}
        self._pad_features: Optional[TextFeatures] = None
        self._persisted: Optional[list[TextFeatures]] = None
        self._max_tokens = getattr(encoder, "max_tokens", 192)
        initializer = getattr(encoder, "initializer", None)
        self.supports_assembly = initializer is not None and encoder.family in ("graph", "sequence")
        if not self.supports_assembly:
            encoder.enable_feature_memo()
            return
        self._persisted = self._persisted_features(initializer)
        self._samples_by_graph = split.samples_by_graph()
        if encoder.family == "sequence":
            self._pad_features = initializer.featurize([""])
        if lazy:
            return
        for graph_index in self._samples_by_graph:
            if encoder.family == "graph":
                self.graph_entry(graph_index)
            else:
                self.sequence_entry(graph_index)

    # -- compilation -----------------------------------------------------------------

    def graph_entry(self, graph_index: int) -> _CompiledGraph:
        """The compiled arrays for one graph (cached unless the plan is lazy)."""
        entry = self._graph_entries.get(graph_index)
        if entry is None:
            entry = self._compile_graph(
                self.split.graphs[graph_index],
                self._samples_by_graph[graph_index],
                self._persisted,
                graph_index,
            )
            if not self.lazy:
                self._graph_entries[graph_index] = entry
        return entry

    def sequence_entry(self, graph_index: int) -> _CompiledSequence:
        entry = self._sequence_entries.get(graph_index)
        if entry is None:
            entry = self._compile_sequence(
                self.split.graphs[graph_index],
                self._samples_by_graph[graph_index],
                self._max_tokens,
            )
            if not self.lazy:
                self._sequence_entries[graph_index] = entry
        return entry

    def _persisted_features(self, initializer) -> Optional[list[TextFeatures]]:
        """Features saved next to the dataset shards, if they match the vocabulary."""
        features = getattr(self.split, "node_features", None)
        if features is None or len(features) != len(self.split.graphs):
            return None
        fingerprint = getattr(self.split, "features_fingerprint", None)
        if fingerprint != initializer.extractor.fingerprint():
            return None
        return features

    def _compile_graph(
        self,
        graph: CodeGraph,
        samples: Sequence[AnnotatedSymbol],
        persisted: Optional[list[TextFeatures]],
        graph_index: int,
    ) -> _CompiledGraph:
        flat = graph.flat
        if flat is not None:
            # Columnar fast path: texts resolve through the intern table,
            # features are gathered from a once-featurized string table, and
            # the (E, 2) edge blocks are zero-copy transposed views of the
            # arena's (2, E) arrays — no node objects, no tuple lists.
            node_texts = flat.node_texts()
            if persisted is not None:
                features = persisted[graph_index]
            else:
                features = self.encoder.initializer.extractor.features_for_graph(graph)
            edges = {kind: pairs.T for kind, pairs in flat.edges.items()}
        else:
            node_texts = [node.text for node in graph.nodes]
            if persisted is not None:
                features = persisted[graph_index]
            else:
                features = self.encoder.initializer.featurize(node_texts)
            edges = {
                kind: np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
                for kind, pairs in graph.edges.items()
            }
        return _CompiledGraph(
            num_nodes=graph.num_nodes,
            node_texts=node_texts,
            features=features,
            edges=edges,
            target_nodes=np.asarray([sample.node_index for sample in samples], dtype=np.int64),
        )

    def _compile_sequence(
        self, graph: CodeGraph, samples: Sequence[AnnotatedSymbol], max_tokens: int
    ) -> _CompiledSequence:
        token_texts, position_of_node, occurrence_pairs = token_view(graph, max_tokens)
        occurrences: dict[int, list[int]] = {}
        for source, target in occurrence_pairs:
            if source in position_of_node:
                occurrences.setdefault(target, []).append(position_of_node[source])
        return _CompiledSequence(
            token_texts=token_texts,
            features=self.encoder.initializer.featurize(token_texts),
            occurrences={node: sorted(positions) for node, positions in occurrences.items()},
            target_nodes=[sample.node_index for sample in samples],
        )

    # -- assembly --------------------------------------------------------------------

    def batch(
        self,
        batch_id: int,
        graph_indices: Sequence[int],
        samples_per_graph: Sequence[Sequence[AnnotatedSymbol]],
    ):
        """The assembled batch for a stable batch id (assembled once, cached).

        Batch memberships are fixed for the whole run (the trainer only
        re-shuffles batch order per epoch), so the disjoint-union arrays,
        features, segment indexes and message plans are built on first use —
        before any epoch-0 gradient step touches them — and reused verbatim
        by every later epoch.
        """
        cached = self._assembled.get(batch_id)
        if cached is None:
            cached = self.assemble(graph_indices, samples_per_graph)
            if not self.lazy:
                self._assembled[batch_id] = cached
        return cached

    def graph_pieces(
        self,
        graph_indices: Sequence[int],
        samples_per_graph: Sequence[Sequence[AnnotatedSymbol]],
    ) -> list[tuple[int, int, int, GraphBatch]]:
        """One single-graph batch per non-empty group, in graph order.

        Returns ``(position, graph_index, sample_count, batch)`` tuples —
        the unit the decomposed training step forwards and backpropagates in
        isolation, and the unit the streaming window and the worker caches
        evict.  A single-graph assembly is the ordinary union assembly with
        one member, so each piece is element-for-element what the group
        contributes to the full union batch.
        """
        pieces: list[tuple[int, int, int, GraphBatch]] = []
        for position, (graph_index, group) in enumerate(zip(graph_indices, samples_per_graph)):
            if not group:
                continue
            pieces.append((position, graph_index, len(group), self._assemble_graph([graph_index], [group])))
        return pieces

    def training_batch(
        self,
        batch_id: int,
        graph_indices: Sequence[int],
        samples_per_graph: Sequence[Sequence[AnnotatedSymbol]],
    ):
        """What the trainer consumes for one batch, cached when resident.

        Graph family: the list of per-graph pieces (see :meth:`graph_pieces`).
        Sequence family: the padded union batch (padding couples the graphs,
        so the sequence family cannot decompose per graph).
        """
        cached = self._training.get(batch_id)
        if cached is None:
            if self.encoder.family == "graph":
                cached = self.graph_pieces(graph_indices, samples_per_graph)
            else:
                cached = self._assemble_sequence(graph_indices, samples_per_graph)
            if not self.lazy:
                self._training[batch_id] = cached
        return cached

    def assemble(self, graph_indices: Sequence[int], samples_per_graph: Sequence[Sequence[AnnotatedSymbol]]):
        """Build the batch for one (graphs, sample-groups) pairing.

        The produced batch carries precomputed features (and, for the GGNN, a
        fused message-passing plan), and is element-for-element identical to
        what the eager ``prepare_batch`` path would have built.
        """
        if self.encoder.family == "graph":
            return self._assemble_graph(graph_indices, samples_per_graph)
        return self._assemble_sequence(graph_indices, samples_per_graph)

    def _assemble_graph(
        self, graph_indices: Sequence[int], samples_per_graph: Sequence[Sequence[AnnotatedSymbol]]
    ) -> GraphBatch:
        entries = [self.graph_entry(index) for index in graph_indices]
        counts = [len(group) for group in samples_per_graph]
        num_nodes = np.asarray([entry.num_nodes for entry in entries], dtype=np.int64)
        offsets = np.zeros(len(entries) + 1, dtype=np.int64)
        np.cumsum(num_nodes, out=offsets[1:])

        edge_chunks: dict[EdgeKind, list[np.ndarray]] = {}
        node_texts: list[str] = []
        for position, entry in enumerate(entries):
            node_texts.extend(entry.node_texts)
            for kind, pairs in entry.edges.items():
                bucket = edge_chunks.setdefault(kind, [])
                if pairs.size:
                    bucket.append(pairs + offsets[position])
        edges = {
            kind: np.concatenate(chunks, axis=0).T if chunks else np.zeros((2, 0), dtype=np.int64)
            for kind, chunks in edge_chunks.items()
        }
        target_nodes = np.concatenate(
            [entry.target_nodes[:count] + offsets[position]
             for position, (entry, count) in enumerate(zip(entries, counts))]
        ) if entries else np.zeros(0, dtype=np.int64)

        batch = GraphBatch(
            node_texts=node_texts,
            edges=edges,
            target_nodes=target_nodes,
            graph_of_node=np.repeat(np.arange(len(entries), dtype=np.int64), num_nodes),
            num_graphs=len(entries),
            features=TextFeatures.concatenate([entry.features for entry in entries]),
        )
        if isinstance(self.encoder, GGNNEncoder):
            plan = build_message_plan(
                edges, batch.num_nodes, self.encoder.edge_kinds, self.encoder.use_reverse_edges
            )
            batch.message_plan = (self.encoder.message_plan_key(), plan)
        return batch

    def _assemble_sequence(
        self, graph_indices: Sequence[int], samples_per_graph: Sequence[Sequence[AnnotatedSymbol]]
    ) -> SequenceBatch:
        entries = [self.sequence_entry(index) for index in graph_indices]
        longest = max([1] + [len(entry.token_texts) for entry in entries])

        padded_texts: list[list[str]] = []
        feature_pieces: list[TextFeatures] = []
        target_occurrences: list[tuple[int, list[int]]] = []
        for sequence_index, (entry, group) in enumerate(zip(entries, samples_per_graph)):
            padding = longest - len(entry.token_texts)
            padded_texts.append(entry.token_texts + [""] * padding)
            feature_pieces.append(entry.features)
            if padding:
                feature_pieces.append(self._pad_features.repeated(padding))
            for sample in group:
                positions = entry.occurrences.get(sample.node_index) or [0]
                target_occurrences.append((sequence_index, positions))
        return SequenceBatch(
            token_texts=padded_texts,
            sequence_length=longest,
            target_occurrences=target_occurrences,
            features=TextFeatures.concatenate(feature_pieces),
        )


class Trainer:
    """Optimises a symbol encoder under one of the three objectives."""

    def __init__(
        self,
        encoder: SymbolEncoder,
        dataset: TypeAnnotationDataset,
        loss_kind: LossKind = LossKind.TYPILUS,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.encoder = encoder
        self.dataset = dataset
        self.loss_kind = loss_kind
        self.config = config or TrainingConfig()
        self.rng = SeededRNG(self.config.seed)
        self.dtype = resolve_dtype(self.config.dtype)
        self._plan: Optional[BatchPlan] = None
        self._batch_groups: Optional[tuple] = None
        if self.config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.config.workers}")
        if self.config.prefetch_batches is not None and self.config.prefetch_batches < 1:
            raise ValueError(
                f"prefetch_batches must be >= 1 (or None for resident), got {self.config.prefetch_batches}"
            )

        vocabulary = dataset.registry.classification_vocabulary(self.config.max_classification_types)
        self.classification_head: Optional[ClassificationHead] = None
        self.typilus_loss: Optional[TypilusLoss] = None
        if loss_kind == LossKind.CLASSIFICATION:
            self.classification_head = ClassificationHead(vocabulary, encoder.output_dim, self.rng.fork(1))
        elif loss_kind == LossKind.TYPILUS:
            self.typilus_loss = TypilusLoss(
                encoder.output_dim,
                list(dataset.registry),
                self.rng.fork(2),
                margin=self.config.margin,
                lambda_classification=self.config.lambda_classification,
            )

        encoder.to_dtype(self.dtype)
        if self.classification_head is not None:
            self.classification_head.to_dtype(self.dtype)
        if self.typilus_loss is not None:
            self.typilus_loss.to_dtype(self.dtype)

        parameters = list(encoder.parameters())
        if self.classification_head is not None:
            parameters += list(self.classification_head.parameters())
        if self.typilus_loss is not None:
            parameters += list(self.typilus_loss.parameters())
        self.optimizer = Adam(parameters, lr=self.config.learning_rate)

    # -- batching --------------------------------------------------------------------

    def _fixed_batches(self, split: DatasetSplit) -> list[tuple[list[int], list[list[AnnotatedSymbol]]]]:
        """The split's batch memberships, decided once before epoch 0.

        Graphs are shuffled once and chunked into ``graphs_per_batch`` groups;
        every epoch then revisits the *same* batches in a freshly shuffled
        order (see :meth:`_batches`).  Fixing membership is what lets a
        :class:`BatchPlan` assemble each batch's disjoint-union arrays,
        segment indexes and message plans exactly once for the whole run.

        Each batch carries its samples already grouped per graph (in graph
        order), so encoding and loss assembly never rescan the whole sample
        list.  The per-graph grouping itself comes from the split's cached
        :meth:`~repro.corpus.dataset.DatasetSplit.samples_by_graph` index.
        """
        samples_by_graph = split.samples_by_graph()
        graph_indices = [index for index in samples_by_graph if samples_by_graph[index]]
        graph_indices = self.rng.shuffle(graph_indices)
        batches: list[tuple[list[int], list[list[AnnotatedSymbol]]]] = []
        for start in range(0, len(graph_indices), self.config.graphs_per_batch):
            chosen = graph_indices[start : start + self.config.graphs_per_batch]
            groups: list[list[AnnotatedSymbol]] = []
            budget = self.config.max_symbols_per_batch
            for graph_index in chosen:
                group = samples_by_graph[graph_index][:budget]
                groups.append(group)
                budget -= len(group)
                if budget <= 0:
                    groups.extend([] for _ in chosen[len(groups):])
                    break
            if any(groups):
                batches.append((chosen, groups))
        return batches

    def _batches(self, split: DatasetSplit) -> list[tuple[int, list[int], list[list[AnnotatedSymbol]]]]:
        """One epoch's batches: fixed memberships in a freshly shuffled order.

        Yields ``(batch_id, graph_indices, samples_per_graph)`` where
        ``batch_id`` is stable across epochs — the compiled plan uses it to
        reuse the batch's precomputed arrays.  Both the eager and the
        compiled path draw from the same RNG stream (one shuffle for the
        memberships, one per epoch for the order), so their batch sequences —
        and therefore float64 loss trajectories — are identical.
        """
        if self._batch_groups is None or self._batch_groups[0] is not split:
            self._batch_groups = (split, self._fixed_batches(split))
        batches = self._batch_groups[1]
        order = self.rng.shuffle(list(range(len(batches))))
        return [(batch_id, batches[batch_id][0], batches[batch_id][1]) for batch_id in order]

    def _encode_samples(
        self, split: DatasetSplit, graph_indices: list[int], samples_per_graph: list[list[AnnotatedSymbol]]
    ) -> Tensor:
        graphs = [split.graphs[index] for index in graph_indices]
        targets_per_graph = [[sample.node_index for sample in group] for group in samples_per_graph]
        return self.encoder.encode(graphs, targets_per_graph)

    def _training_plan(self, split: DatasetSplit) -> Optional[BatchPlan]:
        """The compiled plan for the training split (built once, before epoch 0).

        Streaming and data-parallel runs get a *lazy* plan: compiled arrays
        are produced on demand (by the prefetch thread or inside the
        workers) instead of being precompiled and retained, so nothing
        corpus-sized accumulates in the parent.
        """
        if not self.config.compile_batches:
            return None
        lazy = self.config.prefetch_batches is not None or self.config.workers > 1
        if self._plan is None or self._plan.split is not split or self._plan.lazy != lazy:
            self._plan = BatchPlan(self.encoder, split, lazy=lazy)
        return self._plan

    def _encode_batch(
        self,
        split: DatasetSplit,
        plan: Optional[BatchPlan],
        batch_id: int,
        graph_indices: list[int],
        samples_per_graph: list[list[AnnotatedSymbol]],
    ) -> Tensor:
        if plan is not None and plan.supports_assembly:
            return self.encoder(plan.batch(batch_id, graph_indices, samples_per_graph))
        return self._encode_samples(split, graph_indices, samples_per_graph)

    @staticmethod
    def _ordered_types(samples_per_graph: list[list[AnnotatedSymbol]]) -> list[str]:
        return [sample.annotation for group in samples_per_graph for sample in group]

    # -- training --------------------------------------------------------------------

    def _loss_for_batch(self, embeddings: Tensor, type_names: Sequence[str]) -> Tensor:
        if self.loss_kind == LossKind.CLASSIFICATION:
            assert self.classification_head is not None
            return classification_loss(self.classification_head, embeddings, type_names)
        if self.loss_kind == LossKind.SPACE:
            return similarity_space_loss(embeddings, type_names, margin=self.config.margin)
        assert self.typilus_loss is not None
        return self.typilus_loss(embeddings, type_names)

    def _union_step(self, embeddings: Tensor, samples_per_graph: list[list[AnnotatedSymbol]]) -> float:
        """One optimiser step on a jointly-encoded batch (non-graph families)."""
        loss = self._loss_for_batch(embeddings, self._ordered_types(samples_per_graph))
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.clip_gradients(self.config.gradient_clip)
        self.optimizer.step()
        return float(loss.data)

    def _graph_step(self, outputs: list[Tensor], samples_per_graph: list[list[AnnotatedSymbol]]) -> float:
        """One optimiser step with per-graph gradient decomposition.

        ``outputs`` holds each non-empty group's embeddings, encoded one
        graph at a time (graph forwards are independent, so the concatenated
        activations match a union encode bit-for-bit).  The loss sees the
        whole batch at once through a detached leaf; its gradient is then
        sliced back to the graphs, each graph backpropagates in isolation,
        and the parameter contributions are summed in graph order.  That
        fixed association is what data-parallel workers reproduce exactly —
        the decomposition is the trainer's *definition* of a gradient step,
        not an approximation of the union backward.
        """
        emb = Tensor(np.concatenate([output.data for output in outputs], axis=0), requires_grad=True)
        loss = self._loss_for_batch(emb, self._ordered_types(samples_per_graph))
        self.optimizer.zero_grad()
        loss.backward()
        parameters = self.optimizer.parameters
        seed = emb._grad
        if seed is not None:
            offset = 0
            for output in outputs:
                rows = output.data.shape[0]
                stash = capture_gradients(parameters)
                output.backward(seed[offset : offset + rows])
                contribution = capture_gradients(parameters)
                restore_gradients(parameters, stash)
                accumulate_gradients(parameters, contribution)
                offset += rows
        self.optimizer.clip_gradients(self.config.gradient_clip)
        self.optimizer.step()
        return float(loss.data)

    def _graph_outputs_eager(
        self, split: DatasetSplit, graph_indices: list[int], samples_per_graph: list[list[AnnotatedSymbol]]
    ) -> list[Tensor]:
        outputs: list[Tensor] = []
        for graph_index, group in zip(graph_indices, samples_per_graph):
            if not group:
                continue
            targets = [sample.node_index for sample in group]
            outputs.append(self.encoder.encode([split.graphs[graph_index]], [targets]))
        return outputs

    def _step_with_payload(self, payload, samples_per_graph: list[list[AnnotatedSymbol]]) -> float:
        """Step on an assembled payload from :meth:`BatchPlan.training_batch`."""
        if self.encoder.family == "graph":
            outputs = [self.encoder(piece) for _, _, _, piece in payload]
            return self._graph_step(outputs, samples_per_graph)
        return self._union_step(self.encoder(payload), samples_per_graph)

    def _train_step(
        self,
        split: DatasetSplit,
        plan: Optional[BatchPlan],
        batch_id: int,
        graph_indices: list[int],
        samples_per_graph: list[list[AnnotatedSymbol]],
    ) -> float:
        if plan is not None and plan.supports_assembly:
            payload = plan.training_batch(batch_id, graph_indices, samples_per_graph)
            return self._step_with_payload(payload, samples_per_graph)
        if self.encoder.family == "graph":
            outputs = self._graph_outputs_eager(split, graph_indices, samples_per_graph)
            return self._graph_step(outputs, samples_per_graph)
        return self._union_step(
            self._encode_samples(split, graph_indices, samples_per_graph), samples_per_graph
        )

    def train(self, verbose: bool = False) -> TrainingResult:
        """Run the configured number of epochs over the training split."""
        result = TrainingResult(
            encoder=self.encoder,
            loss_kind=self.loss_kind,
            classification_head=self.classification_head,
            typilus_loss=self.typilus_loss,
        )
        self.encoder.train()
        split = self.dataset.train
        plan = self._training_plan(split)
        team = None
        if (
            self.config.workers > 1
            and self.encoder.family == "graph"
            and plan is not None
            and plan.supports_assembly
        ):
            team = WorkerTeam.start(self, plan, split)
            if team is None and verbose:
                print(f"workers={self.config.workers} unavailable on this host; training serially")
        if team is None and plan is not None and plan.lazy and self.config.prefetch_batches is None:
            # The lazy plan existed for the worker path; without a team (and
            # without a streaming window) resident compilation is faster.
            plan = self._plan = BatchPlan(self.encoder, split, lazy=False)
        streaming = (
            team is None
            and self.config.prefetch_batches is not None
            and plan is not None
            and plan.supports_assembly
        )
        try:
            for epoch in range(self.config.epochs):
                losses: list[float] = []
                elapsed_before = result.stopwatch.total("train_epoch")
                with result.stopwatch.measure("train_epoch"):
                    epoch_batches = self._batches(split)
                    if team is not None:
                        for batch_id, graph_indices, samples_per_graph in epoch_batches:
                            losses.append(team.run_batch(self, graph_indices, samples_per_graph))
                    elif streaming:
                        payloads = stream_batches(
                            epoch_batches,
                            lambda batch: plan.training_batch(batch[0], batch[1], batch[2]),
                            self.config.prefetch_batches,
                        )
                        for batch, payload in zip(epoch_batches, payloads):
                            losses.append(self._step_with_payload(payload, batch[2]))
                    else:
                        for batch_id, graph_indices, samples_per_graph in epoch_batches:
                            losses.append(
                                self._train_step(split, plan, batch_id, graph_indices, samples_per_graph)
                            )
                stats = EpochStats(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if losses else float("nan"),
                    num_batches=len(losses),
                    # The stopwatch section is cumulative across epochs; report
                    # this epoch's share, not the running total.
                    seconds=result.stopwatch.total("train_epoch") - elapsed_before,
                    peak_rss_bytes=peak_rss_bytes(),
                )
                result.history.append(stats)
                if verbose:
                    peak = ""
                    if stats.peak_rss_bytes is not None:
                        peak = f" peak_rss={stats.peak_rss_bytes / (1024 * 1024):.1f}MiB"
                    print(
                        f"epoch {epoch}: loss={stats.mean_loss:.4f} "
                        f"over {stats.num_batches} batches{peak}"
                    )
        finally:
            if team is not None:
                team.close()
        self.encoder.eval()
        return result

    # -- inference-side helpers --------------------------------------------------------

    def embed_split(self, split: DatasetSplit, batch_graphs: int = 16) -> tuple[np.ndarray, list[AnnotatedSymbol]]:
        """Embed every supervised symbol of a split (in dataset order)."""
        return SymbolEmbedder(self.encoder).embed_split(split, batch_graphs=batch_graphs)

    def build_type_space(
        self,
        include_valid: bool = True,
        approximate_index: bool = False,
        dtype=None,
        index_kind=None,
        index_params=None,
    ) -> TypeSpace:
        """Populate the type map from the train (and validation) annotations.

        This mirrors Sec. 7: "we built the type map over the training and the
        validation sets".  ``dtype`` selects the marker storage precision
        (default float64, the historical behaviour; ``float32`` keeps a
        float32 encoder's serving path up-cast free at half the memory).
        ``index_kind``/``index_params`` select the spatial index
        (``"exact"``/``"lsh"``/``"ivf"``), superseding ``approximate_index``.
        """
        space = TypeSpace(
            self.encoder.output_dim,
            approximate_index=approximate_index,
            dtype=dtype if dtype is not None else np.float64,
            index_kind=index_kind,
            index_params=index_params,
        )
        train_embeddings, train_samples = self.embed_split(self.dataset.train)
        space.add_markers([s.annotation for s in train_samples], train_embeddings, source="train")
        if include_valid and self.dataset.valid.samples:
            valid_embeddings, valid_samples = self.embed_split(self.dataset.valid)
            space.add_markers([s.annotation for s in valid_samples], valid_embeddings, source="valid")
        return space
