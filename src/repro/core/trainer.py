"""Training loop for the type-prediction models.

The trainer is loss-agnostic so that the nine model/loss combinations of
Table 2 (``{Seq,Path,Graph} × {Class,Space,Typilus}``) all run through the
same code path:

* ``classification`` — Eq. 1 with a closed vocabulary head (``*2Class``);
* ``space`` — Eq. 3, pure deep similarity learning (``*2Space``);
* ``typilus`` — Eq. 4, the combined objective (``*-Typilus``).

Mini-batches are formed over *graphs* (files); all supervised symbols of the
selected graphs are encoded together, which is also how the similarity loss
obtains its in-batch positive/negative sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.core.embedder import SymbolEmbedder
from repro.core.losses import (
    ClassificationHead,
    TypilusLoss,
    classification_loss,
    similarity_space_loss,
)
from repro.core.typespace import TypeSpace
from repro.corpus.dataset import AnnotatedSymbol, DatasetSplit, TypeAnnotationDataset
from repro.models.base import SymbolEncoder
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG
from repro.utils.timing import Stopwatch


class LossKind(str, Enum):
    """Which of the paper's objectives to optimise."""

    CLASSIFICATION = "classification"  # Eq. 1
    SPACE = "space"  # Eq. 3
    TYPILUS = "typilus"  # Eq. 4


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run (scaled down from the paper's)."""

    epochs: int = 10
    graphs_per_batch: int = 8
    max_symbols_per_batch: int = 256
    learning_rate: float = 5e-3
    gradient_clip: float = 5.0
    margin: float = 2.0
    lambda_classification: float = 1.0
    max_classification_types: Optional[int] = None
    seed: int = 17


@dataclass
class EpochStats:
    """Loss and timing of one epoch."""

    epoch: int
    mean_loss: float
    num_batches: int
    seconds: float


@dataclass
class TrainingResult:
    """Everything a caller needs after training."""

    encoder: SymbolEncoder
    loss_kind: LossKind
    classification_head: Optional[ClassificationHead]
    typilus_loss: Optional[TypilusLoss]
    history: list[EpochStats] = field(default_factory=list)
    stopwatch: Stopwatch = field(default_factory=Stopwatch)

    @property
    def final_loss(self) -> float:
        return self.history[-1].mean_loss if self.history else float("nan")


class Trainer:
    """Optimises a symbol encoder under one of the three objectives."""

    def __init__(
        self,
        encoder: SymbolEncoder,
        dataset: TypeAnnotationDataset,
        loss_kind: LossKind = LossKind.TYPILUS,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.encoder = encoder
        self.dataset = dataset
        self.loss_kind = loss_kind
        self.config = config or TrainingConfig()
        self.rng = SeededRNG(self.config.seed)

        vocabulary = dataset.registry.classification_vocabulary(self.config.max_classification_types)
        self.classification_head: Optional[ClassificationHead] = None
        self.typilus_loss: Optional[TypilusLoss] = None
        if loss_kind == LossKind.CLASSIFICATION:
            self.classification_head = ClassificationHead(vocabulary, encoder.output_dim, self.rng.fork(1))
        elif loss_kind == LossKind.TYPILUS:
            self.typilus_loss = TypilusLoss(
                encoder.output_dim,
                list(dataset.registry),
                self.rng.fork(2),
                margin=self.config.margin,
                lambda_classification=self.config.lambda_classification,
            )

        parameters = list(encoder.parameters())
        if self.classification_head is not None:
            parameters += list(self.classification_head.parameters())
        if self.typilus_loss is not None:
            parameters += list(self.typilus_loss.parameters())
        self.optimizer = Adam(parameters, lr=self.config.learning_rate)

    # -- batching --------------------------------------------------------------------

    def _batches(self, split: DatasetSplit) -> list[tuple[list[int], list[list[AnnotatedSymbol]]]]:
        """Group the split's graphs into batches of ``graphs_per_batch``.

        Each batch carries its samples already grouped per graph (in graph
        order), so encoding and loss assembly never rescan the whole sample
        list.  The per-graph grouping itself comes from the split's cached
        :meth:`~repro.corpus.dataset.DatasetSplit.samples_by_graph` index —
        built once, not once per epoch.
        """
        samples_by_graph = split.samples_by_graph()
        graph_indices = [index for index in samples_by_graph if samples_by_graph[index]]
        graph_indices = self.rng.shuffle(graph_indices)
        batches: list[tuple[list[int], list[list[AnnotatedSymbol]]]] = []
        for start in range(0, len(graph_indices), self.config.graphs_per_batch):
            chosen = graph_indices[start : start + self.config.graphs_per_batch]
            groups: list[list[AnnotatedSymbol]] = []
            budget = self.config.max_symbols_per_batch
            for graph_index in chosen:
                group = samples_by_graph[graph_index][:budget]
                groups.append(group)
                budget -= len(group)
                if budget <= 0:
                    groups.extend([] for _ in chosen[len(groups):])
                    break
            if any(groups):
                batches.append((chosen, groups))
        return batches

    def _encode_samples(
        self, split: DatasetSplit, graph_indices: list[int], samples_per_graph: list[list[AnnotatedSymbol]]
    ) -> Tensor:
        graphs = [split.graphs[index] for index in graph_indices]
        targets_per_graph = [[sample.node_index for sample in group] for group in samples_per_graph]
        return self.encoder.encode(graphs, targets_per_graph)

    @staticmethod
    def _ordered_types(samples_per_graph: list[list[AnnotatedSymbol]]) -> list[str]:
        return [sample.annotation for group in samples_per_graph for sample in group]

    # -- training --------------------------------------------------------------------

    def _loss_for_batch(self, embeddings: Tensor, type_names: Sequence[str]) -> Tensor:
        if self.loss_kind == LossKind.CLASSIFICATION:
            assert self.classification_head is not None
            return classification_loss(self.classification_head, embeddings, type_names)
        if self.loss_kind == LossKind.SPACE:
            return similarity_space_loss(embeddings, type_names, margin=self.config.margin)
        assert self.typilus_loss is not None
        return self.typilus_loss(embeddings, type_names)

    def train(self, verbose: bool = False) -> TrainingResult:
        """Run the configured number of epochs over the training split."""
        result = TrainingResult(
            encoder=self.encoder,
            loss_kind=self.loss_kind,
            classification_head=self.classification_head,
            typilus_loss=self.typilus_loss,
        )
        self.encoder.train()
        for epoch in range(self.config.epochs):
            losses: list[float] = []
            with result.stopwatch.measure("train_epoch"):
                for graph_indices, samples_per_graph in self._batches(self.dataset.train):
                    embeddings = self._encode_samples(self.dataset.train, graph_indices, samples_per_graph)
                    type_names = self._ordered_types(samples_per_graph)
                    loss = self._loss_for_batch(embeddings, type_names)
                    self.optimizer.zero_grad()
                    loss.backward()
                    self.optimizer.clip_gradients(self.config.gradient_clip)
                    self.optimizer.step()
                    losses.append(float(loss.data))
            stats = EpochStats(
                epoch=epoch,
                mean_loss=float(np.mean(losses)) if losses else float("nan"),
                num_batches=len(losses),
                seconds=result.stopwatch.sections.get("train_epoch", 0.0),
            )
            result.history.append(stats)
            if verbose:
                print(f"epoch {epoch}: loss={stats.mean_loss:.4f} over {stats.num_batches} batches")
        self.encoder.eval()
        return result

    # -- inference-side helpers --------------------------------------------------------

    def embed_split(self, split: DatasetSplit, batch_graphs: int = 16) -> tuple[np.ndarray, list[AnnotatedSymbol]]:
        """Embed every supervised symbol of a split (in dataset order)."""
        return SymbolEmbedder(self.encoder).embed_split(split, batch_graphs=batch_graphs)

    def build_type_space(self, include_valid: bool = True, approximate_index: bool = False) -> TypeSpace:
        """Populate the type map from the train (and validation) annotations.

        This mirrors Sec. 7: "we built the type map over the training and the
        validation sets".
        """
        space = TypeSpace(self.encoder.output_dim, approximate_index=approximate_index)
        train_embeddings, train_samples = self.embed_split(self.dataset.train)
        space.add_markers([s.annotation for s in train_samples], train_embeddings, source="train")
        if include_valid and self.dataset.valid.samples:
            valid_embeddings, valid_samples = self.embed_split(self.dataset.valid)
            space.add_markers([s.annotation for s in valid_samples], valid_embeddings, source="valid")
        return space
