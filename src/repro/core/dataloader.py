"""Bounded-prefetch batch streaming for the training loop.

The resident :class:`~repro.core.trainer.BatchPlan` keeps every compiled
graph and every assembled batch alive for the whole run, so peak RSS grows
linearly with the corpus.  Streaming mode keeps batch *memberships* exactly
as fixed (they are decided before epoch 0 from the same RNG stream), but
materializes the assembled arrays on a producer thread into a bounded queue
and drops each batch as soon as the consumer has stepped on it.  Assembly is
pure array work — it draws no randomness and mutates no trainer state — so
the values flowing through the model are bit-identical at any window size,
including a window of one.

The producer is the only thread that touches the plan's compile/assembly
machinery during an epoch; the consumer only sees finished payloads, which
keeps the two sides free of shared mutable state.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterable, Iterator, TypeVar

_ItemT = TypeVar("_ItemT")
_PayloadT = TypeVar("_PayloadT")

#: Sentinel window meaning "no bound" (a plain resident-sized queue).
UNBOUNDED = 0

#: How often the producer re-checks for cancellation while the queue is full.
_PUT_POLL_SECONDS = 0.1


def stream_batches(
    batches: Iterable[_ItemT],
    assemble: Callable[[_ItemT], _PayloadT],
    window: int,
) -> Iterator[_PayloadT]:
    """Yield ``assemble(batch)`` for each batch, at most ``window`` in flight.

    ``window`` bounds how many assembled-but-unconsumed payloads exist at any
    moment (``UNBOUNDED``/``0`` removes the bound).  Exceptions raised by
    ``assemble`` propagate to the consumer at the batch where they occurred.
    If the consumer abandons the iterator early, the producer notices via a
    cancellation flag and exits instead of blocking on the full queue.
    """
    if window < 0:
        raise ValueError(f"prefetch window must be >= 0, got {window}")
    items: queue.Queue = queue.Queue(maxsize=window)
    cancelled = threading.Event()

    def _produce() -> None:
        try:
            for batch in batches:
                payload = assemble(batch)
                while not cancelled.is_set():
                    try:
                        items.put(("item", payload), timeout=_PUT_POLL_SECONDS)
                        break
                    except queue.Full:
                        continue
                else:
                    return
            items.put(("done", None))
        except BaseException as error:  # re-raised on the consumer side
            if not cancelled.is_set():
                items.put(("error", error))

    producer = threading.Thread(target=_produce, name="batch-prefetch", daemon=True)
    producer.start()
    try:
        while True:
            kind, payload = items.get()
            if kind == "done":
                return
            if kind == "error":
                raise payload
            yield payload
    finally:
        cancelled.set()
