"""Evaluation metrics (Sec. 6.1).

Three criteria compare a prediction ``τp`` against the ground truth ``τg``:

* **exact match** — the canonical strings are identical;
* **match up to parametric type** — identical after erasing all type
  parameters (outermost ``[...]``);
* **type neutrality** — ``τg :< τp`` and ``τp ≠ ⊤`` in the corpus type
  lattice (the fast approximation of Sec. 6.1; the checker-based variant
  lives in :mod:`repro.evaluation.experiments`).

The module also provides the aggregations the paper reports: common/rare
breakdowns (Table 2), per-symbol-kind breakdowns (Table 3), precision-recall
curves over a confidence threshold (Fig. 4, Fig. 7) and frequency-bucketed
accuracy (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graph.nodes import SymbolKind
from repro.types.lattice import TypeLattice
from repro.types.normalize import canonical_string, erase_parameters
from repro.types.parser import try_parse_type
from repro.types.registry import TypeRegistry


@dataclass
class EvaluatedPrediction:
    """One scored prediction: what was predicted, for what, with what confidence."""

    predicted: Optional[str]
    ground_truth: str
    confidence: float
    kind: SymbolKind = SymbolKind.VARIABLE
    exact: bool = False
    up_to_parametric: bool = False
    neutral: bool = False


@dataclass
class MetricSummary:
    """Aggregate percentages over a set of evaluated predictions."""

    count: int
    exact_match: float
    match_up_to_parametric: float
    type_neutral: float

    def as_row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "exact": round(100 * self.exact_match, 1),
            "up_to_parametric": round(100 * self.match_up_to_parametric, 1),
            "type_neutral": round(100 * self.type_neutral, 1),
        }


def _base_name(type_string: str) -> str:
    parsed = try_parse_type(type_string)
    if parsed is None:
        return type_string
    return str(erase_parameters(parsed))


def evaluate_prediction(
    predicted: Optional[str],
    ground_truth: str,
    confidence: float,
    lattice: TypeLattice,
    kind: SymbolKind = SymbolKind.VARIABLE,
) -> EvaluatedPrediction:
    """Score one prediction under all three criteria."""
    truth_canonical = canonical_string(ground_truth) or ground_truth
    if predicted is None:
        return EvaluatedPrediction(None, truth_canonical, confidence, kind)
    predicted_canonical = canonical_string(predicted) or predicted
    exact = predicted_canonical == truth_canonical
    up_to_parametric = _base_name(predicted_canonical) == _base_name(truth_canonical)
    neutral = exact or lattice.is_type_neutral_str(predicted_canonical, truth_canonical)
    return EvaluatedPrediction(
        predicted=predicted_canonical,
        ground_truth=truth_canonical,
        confidence=confidence,
        kind=kind,
        exact=exact,
        up_to_parametric=up_to_parametric,
        neutral=neutral,
    )


def summarise(predictions: Sequence[EvaluatedPrediction]) -> MetricSummary:
    """Percentage of predictions satisfying each criterion."""
    if not predictions:
        return MetricSummary(count=0, exact_match=0.0, match_up_to_parametric=0.0, type_neutral=0.0)
    count = len(predictions)
    return MetricSummary(
        count=count,
        exact_match=sum(p.exact for p in predictions) / count,
        match_up_to_parametric=sum(p.up_to_parametric for p in predictions) / count,
        type_neutral=sum(p.neutral for p in predictions) / count,
    )


def summarise_by_rarity(
    predictions: Sequence[EvaluatedPrediction], registry: TypeRegistry
) -> dict[str, MetricSummary]:
    """The All / Common / Rare breakdown of Table 2."""
    common = [p for p in predictions if registry.is_common(p.ground_truth)]
    rare = [p for p in predictions if registry.is_rare(p.ground_truth)]
    return {"all": summarise(predictions), "common": summarise(common), "rare": summarise(rare)}


def summarise_by_kind(predictions: Sequence[EvaluatedPrediction]) -> dict[str, MetricSummary]:
    """The variable / parameter / return breakdown of Table 3."""
    return {
        kind.value: summarise([p for p in predictions if p.kind == kind])
        for kind in SymbolKind
    }


@dataclass
class PrecisionRecallPoint:
    """One point of a precision-recall curve at a given confidence threshold."""

    threshold: float
    recall: float
    precision_exact: float
    precision_up_to_parametric: float
    precision_neutral: float


def precision_recall_curve(
    predictions: Sequence[EvaluatedPrediction], num_thresholds: int = 21
) -> list[PrecisionRecallPoint]:
    """Precision/recall as the confidence threshold sweeps from 0 to 1 (Fig. 4).

    Recall is the fraction of all symbols for which a prediction is emitted
    (confidence ≥ threshold); precision is measured over the emitted subset.
    """
    points: list[PrecisionRecallPoint] = []
    total = len(predictions)
    if total == 0:
        return points
    for threshold in np.linspace(0.0, 1.0, num_thresholds):
        kept = [p for p in predictions if p.predicted is not None and p.confidence >= threshold]
        recall = len(kept) / total
        if kept:
            precision_exact = sum(p.exact for p in kept) / len(kept)
            precision_parametric = sum(p.up_to_parametric for p in kept) / len(kept)
            precision_neutral = sum(p.neutral for p in kept) / len(kept)
        else:
            precision_exact = precision_parametric = precision_neutral = 1.0
        points.append(
            PrecisionRecallPoint(
                threshold=float(threshold),
                recall=recall,
                precision_exact=precision_exact,
                precision_up_to_parametric=precision_parametric,
                precision_neutral=precision_neutral,
            )
        )
    return points


def precision_at_recall(points: Sequence[PrecisionRecallPoint], recall_target: float, criterion: str = "neutral") -> float:
    """Interpolate the precision achieved at a given recall level.

    The paper's headline claim is ~95% type neutrality at 70% recall; this
    helper extracts the comparable number from a curve.
    """
    attribute = {
        "exact": "precision_exact",
        "up_to_parametric": "precision_up_to_parametric",
        "neutral": "precision_neutral",
    }[criterion]
    eligible = [p for p in points if p.recall >= recall_target]
    if not eligible:
        return 0.0
    best = min(eligible, key=lambda p: p.recall)
    return getattr(best, attribute)


@dataclass
class FrequencyBucket:
    """Accuracy of predictions whose ground-truth type has a given frequency."""

    upper_bound: int
    count: int
    exact_match: float
    match_up_to_parametric: float


DEFAULT_BUCKET_BOUNDS = (2, 5, 10, 20, 50, 100, 200, 500, 1000, 10000)


def bucketed_by_frequency(
    predictions: Sequence[EvaluatedPrediction],
    registry: TypeRegistry,
    bounds: Sequence[int] = DEFAULT_BUCKET_BOUNDS,
) -> list[FrequencyBucket]:
    """Exact / up-to-parametric accuracy bucketed by annotation count (Fig. 5)."""
    buckets: list[FrequencyBucket] = []
    assigned: dict[int, list[EvaluatedPrediction]] = {bound: [] for bound in bounds}
    for prediction in predictions:
        count = registry.count_of(prediction.ground_truth)
        for bound in bounds:
            if count <= bound:
                assigned[bound].append(prediction)
                break
    for bound in bounds:
        bucket_predictions = assigned[bound]
        if bucket_predictions:
            exact = sum(p.exact for p in bucket_predictions) / len(bucket_predictions)
            parametric = sum(p.up_to_parametric for p in bucket_predictions) / len(bucket_predictions)
        else:
            exact = parametric = 0.0
        buckets.append(
            FrequencyBucket(
                upper_bound=bound,
                count=len(bucket_predictions),
                exact_match=exact,
                match_up_to_parametric=parametric,
            )
        )
    return buckets
