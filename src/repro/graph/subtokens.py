"""Subtoken handling for vocabulary nodes and node initialisation.

The initial state of every node is the average of the embeddings of its
subtokens (Eq. 7); identifiers additionally get ``SUBTOKEN_OF`` edges to
shared vocabulary nodes.  This module centralises the splitting rule and the
subtoken vocabulary used by the models.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.utils.text import camel_and_snake_split

#: Subtoken reserved for out-of-vocabulary words.
UNKNOWN_SUBTOKEN = "%UNK%"
#: Subtoken used for nodes whose text yields no subtokens (punctuation etc.).
EMPTY_SUBTOKEN = "%EMPTY%"


def restore_ordered_tokens(vocabulary, tokens: Iterable[str]):
    """Rebuild a finalised token→id vocabulary from an ordered token list.

    Shared by :class:`SubtokenVocabulary` and
    :class:`repro.models.encoder_init.TokenVocabulary` so pipeline
    persistence has exactly one restore path: each token's position in
    ``tokens`` becomes its id, matching the embedding rows the saved model
    was trained with.
    """
    vocabulary._token_to_id = {token: position for position, token in enumerate(tokens)}
    vocabulary.max_size = max(vocabulary.max_size, len(vocabulary._token_to_id))
    vocabulary._finalised = True
    return vocabulary


def split_identifier(text: str) -> list[str]:
    """Split an identifier or syntax label into subtokens.

    Non-identifier lexemes (operators, literals) map to a single pseudo
    subtoken so every node has at least one subtoken to average over.
    """
    parts = camel_and_snake_split(text)
    if parts:
        return parts
    return [EMPTY_SUBTOKEN]


class SubtokenVocabulary:
    """A frequency-pruned mapping from subtokens to integer ids."""

    def __init__(self, max_size: int = 10_000, min_count: int = 1) -> None:
        self.max_size = max_size
        self.min_count = min_count
        self._counts: Counter[str] = Counter()
        self._token_to_id: dict[str, int] = {}
        self._finalised = False

    def observe(self, subtokens: Iterable[str]) -> None:
        if self._finalised:
            raise RuntimeError("cannot observe new subtokens after finalise()")
        self._counts.update(subtokens)

    def observe_identifier(self, text: str) -> None:
        self.observe(split_identifier(text))

    def finalise(self) -> "SubtokenVocabulary":
        """Freeze the vocabulary, keeping the most frequent subtokens."""
        self._token_to_id = {UNKNOWN_SUBTOKEN: 0, EMPTY_SUBTOKEN: 1}
        for token, count in self._counts.most_common():
            if count < self.min_count or len(self._token_to_id) >= self.max_size:
                break
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._token_to_id)
        self._finalised = True
        return self

    def __len__(self) -> int:
        return len(self._token_to_id)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def lookup(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id.get(UNKNOWN_SUBTOKEN, 0))

    def lookup_many(self, tokens: Iterable[str]) -> list[int]:
        return [self.lookup(token) for token in tokens]

    def ids_for_identifier(self, text: str) -> list[int]:
        return self.lookup_many(split_identifier(text))

    @property
    def tokens(self) -> list[str]:
        return list(self._token_to_id)

    @classmethod
    def from_tokens(cls, tokens: Iterable[str]) -> "SubtokenVocabulary":
        """Rebuild a finalised vocabulary from an ordered token list (persistence)."""
        return restore_ordered_tokens(cls(), tokens)


class CharacterVocabulary:
    """Character-level vocabulary for the char-CNN node initialiser."""

    PAD = 0
    UNKNOWN = 1

    def __init__(self) -> None:
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_."
        self._char_to_id = {ch: i + 2 for i, ch in enumerate(alphabet)}

    def __len__(self) -> int:
        return len(self._char_to_id) + 2

    def encode(self, text: str, max_chars: int) -> list[int]:
        """Encode ``text`` into a fixed-length list of character ids."""
        ids = [self._char_to_id.get(ch, self.UNKNOWN) for ch in text[:max_chars]]
        ids.extend([self.PAD] * (max_chars - len(ids)))
        return ids
