"""Control-flow-aware use analysis for ``NEXT_MAY_USE`` edges.

The paper's graph connects "each token that is bound to a variable to all
potential next uses of the variable" (Table 1).  Computing the exact relation
requires a control-flow graph; this module implements a close approximation
working directly on the AST, which is how the original artefact (and the
re-implementations it inspired) build the edge:

* statements in a block flow sequentially;
* both branches of an ``if`` may follow the condition, and the successor of
  the ``if`` may follow either branch (or the condition when a branch is
  missing);
* loop bodies may repeat, so the last uses inside a loop body may flow back
  to the first uses of the body;
* ``try`` handlers may follow any point of the body (approximated as
  following the whole body);
* nested function and class definitions open new scopes and are not crossed.

The analysis yields pairs ``(use, next_use)`` over *occurrence ids* — opaque
identifiers supplied by the caller (the graph builder passes token-node
indices).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Optional


@dataclass
class UseEvent:
    """A single read or write of a name inside one statement."""

    name: str
    occurrence_id: int
    lineno: int
    col: int


#: Maps a name to the set of occurrence ids that may be the "last" use so far.
LastUses = dict[str, set[int]]


def _merge(*branches: LastUses) -> LastUses:
    merged: LastUses = {}
    for branch in branches:
        for name, uses in branch.items():
            merged.setdefault(name, set()).update(uses)
    return merged


def _copy(last: LastUses) -> LastUses:
    return {name: set(uses) for name, uses in last.items()}


class NextMayUseAnalysis:
    """Computes the NEXT_MAY_USE relation for one scope.

    Parameters
    ----------
    uses_of_statement:
        Callback returning the lexically ordered :class:`UseEvent` list of a
        statement or expression node, *excluding* anything inside nested
        function/class definitions (the builder owns that logic because it
        already knows which AST nodes map to which token nodes).
    """

    def __init__(self, uses_of_statement: Callable[[ast.AST], list[UseEvent]]) -> None:
        self._uses_of = uses_of_statement
        self.pairs: set[tuple[int, int]] = set()

    # -- public API -------------------------------------------------------------

    def analyse_body(self, body: Iterable[ast.stmt], initial: Optional[LastUses] = None) -> LastUses:
        """Analyse a function or module body and return the trailing last-uses.

        ``initial`` seeds the analysis with uses that precede the body — the
        graph builder passes the parameter-definition tokens of the enclosing
        function so the first use of a parameter links back to its definition.
        """
        return self._run_block(list(body), _copy(initial) if initial else {})

    # -- internals ----------------------------------------------------------------

    def _link(self, last: LastUses, event: UseEvent) -> None:
        for previous in last.get(event.name, ()):  # may be empty: first use
            if previous != event.occurrence_id:
                self.pairs.add((previous, event.occurrence_id))

    def _run_uses(self, node: Optional[ast.AST], last: LastUses) -> LastUses:
        """Thread the uses of a single expression/statement through ``last``."""
        if node is None:
            return last
        for event in self._uses_of(node):
            self._link(last, event)
            last[event.name] = {event.occurrence_id}
        return last

    def _run_block(self, statements: list[ast.stmt], last: LastUses) -> LastUses:
        for statement in statements:
            last = self._run_statement(statement, last)
        return last

    def _run_statement(self, statement: ast.stmt, last: LastUses) -> LastUses:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # New scope: only the decorators and default expressions execute here.
            for decorator in statement.decorator_list:
                last = self._run_uses(decorator, last)
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in list(statement.args.defaults) + [
                    d for d in statement.args.kw_defaults if d is not None
                ]:
                    last = self._run_uses(default, last)
            return last

        if isinstance(statement, ast.If):
            last = self._run_uses(statement.test, last)
            then_branch = self._run_block(statement.body, _copy(last))
            else_branch = self._run_block(statement.orelse, _copy(last))
            return _merge(then_branch, else_branch)

        if isinstance(statement, (ast.While,)):
            last = self._run_uses(statement.test, last)
            body_out = self._run_block(statement.body, _copy(last))
            # Back edge: the body may execute again after itself.
            body_again = self._run_block(statement.body, _copy(body_out))
            else_out = self._run_block(statement.orelse, _copy(last))
            return _merge(last, body_out, body_again, else_out)

        if isinstance(statement, (ast.For, ast.AsyncFor)):
            last = self._run_uses(statement.iter, last)
            last = self._run_uses(statement.target, last)
            body_out = self._run_block(statement.body, _copy(last))
            body_again = self._run_block(statement.body, _copy(body_out))
            else_out = self._run_block(statement.orelse, _copy(last))
            return _merge(last, body_out, body_again, else_out)

        if isinstance(statement, ast.Try):
            body_out = self._run_block(statement.body, _copy(last))
            handler_outs = []
            for handler in statement.handlers:
                # A handler may run after any prefix of the body; approximating
                # with "after the whole body or before it" keeps the relation small.
                handler_entry = _merge(_copy(last), _copy(body_out))
                handler_outs.append(self._run_block(handler.body, handler_entry))
            else_out = self._run_block(statement.orelse, _copy(body_out))
            merged = _merge(body_out, else_out, *handler_outs) if handler_outs else _merge(body_out, else_out)
            return self._run_block(statement.finalbody, merged)

        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                last = self._run_uses(item.context_expr, last)
                last = self._run_uses(item.optional_vars, last)
            return self._run_block(statement.body, last)

        if isinstance(statement, ast.Return):
            return self._run_uses(statement.value, last)

        if isinstance(statement, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = getattr(statement, "value", None)
            last = self._run_uses(value, last)
            targets = statement.targets if isinstance(statement, ast.Assign) else [statement.target]
            for target in targets:
                last = self._run_uses(target, last)
            return last

        # Fallback: expression statements, assert, raise, delete, import, pass...
        return self._run_uses(statement, last)


def compute_next_lexical_use(events: list[UseEvent]) -> set[tuple[int, int]]:
    """Chain occurrences of each name in lexical (line, column) order."""
    pairs: set[tuple[int, int]] = set()
    by_name: dict[str, list[UseEvent]] = {}
    for event in events:
        by_name.setdefault(event.name, []).append(event)
    for name_events in by_name.values():
        ordered = sorted(name_events, key=lambda e: (e.lineno, e.col, e.occurrence_id))
        for previous, current in zip(ordered, ordered[1:]):
            if previous.occurrence_id != current.occurrence_id:
                pairs.add((previous.occurrence_id, current.occurrence_id))
    return pairs
