"""Python source → program graph extraction (Sec. 5.1 of the paper)."""

from repro.graph.builder import (
    GraphBuildError,
    GraphBuilder,
    build_graph,
    collect_annotations,
    erase_annotations,
)
from repro.graph.codegraph import CodeGraph
from repro.graph.edges import (
    ALL_EDGE_KINDS,
    DATAFLOW_USE_EDGES,
    SYNTACTIC_EDGES,
    EdgeKind,
)
from repro.graph.flatgraph import FlatGraph, FlatGraphBuilder, StringTable
from repro.graph.nodes import GraphNode, NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import (
    CharacterVocabulary,
    SubtokenVocabulary,
    split_identifier,
)
from repro.graph.visualize import to_dot, write_dot

__all__ = [
    "CodeGraph",
    "FlatGraph",
    "FlatGraphBuilder",
    "StringTable",
    "GraphBuilder",
    "GraphBuildError",
    "build_graph",
    "collect_annotations",
    "erase_annotations",
    "EdgeKind",
    "ALL_EDGE_KINDS",
    "SYNTACTIC_EDGES",
    "DATAFLOW_USE_EDGES",
    "GraphNode",
    "NodeKind",
    "SymbolInfo",
    "SymbolKind",
    "SubtokenVocabulary",
    "CharacterVocabulary",
    "split_identifier",
    "to_dot",
    "write_dot",
]
