"""Build Typilus program graphs from Python source code.

The builder follows Sec. 5.1 of the paper.  For a single Python file it

1. collects the ground-truth type annotations (parameters, returns,
   variable annotations) keyed by scope, name and symbol kind;
2. *erases* every annotation from the AST — the models must never see the
   thing they are asked to predict — and re-generates the source;
3. tokenises the erased source into **token** nodes with ``NEXT_TOKEN``
   edges;
4. walks the erased AST creating **non-terminal** nodes, ``CHILD`` edges,
   ``ASSIGNED_FROM`` and ``RETURNS_TO`` edges;
5. builds the symbol table: one **symbol** node per variable, parameter and
   function return, connected to every binding token and syntax node with
   ``OCCURRENCE_OF`` edges;
6. runs the dataflow analysis producing ``NEXT_LEXICAL_USE`` and
   ``NEXT_MAY_USE`` edges between occurrence tokens;
7. adds **vocabulary** nodes and ``SUBTOKEN_OF`` edges for identifier
   subtokens;
8. attaches the collected annotations to the symbol records.

A bare annotated declaration (``x: int`` with no value) is rewritten to
``x = None`` during erasure so the variable still occurs in the erased
program; this only affects the graph, never any executed code.
"""

from __future__ import annotations

import ast
import io
import tokenize as tokenize_module
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.graph.codegraph import CodeGraph
from repro.graph.dataflow import NextMayUseAnalysis, UseEvent, compute_next_lexical_use
from repro.graph.edges import EdgeKind
from repro.graph.flatgraph import FlatGraphBuilder, is_identifier_text
from repro.graph.nodes import NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import split_identifier

#: Name used for the function-return symbol inside a function scope.
RETURN_SYMBOL_NAME = "<return>"

#: Token types kept as token nodes (identifiers/keywords, operators, literals).
_KEPT_TOKEN_TYPES = {
    tokenize_module.NAME,
    tokenize_module.OP,
    tokenize_module.NUMBER,
    tokenize_module.STRING,
}


class GraphBuildError(ValueError):
    """Raised when a file cannot be parsed or its graph cannot be built."""


# ---------------------------------------------------------------------------
# Annotation collection and erasure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolKey:
    """Identifies a symbol across the original and the erased tree."""

    scope: str
    name: str
    kind: SymbolKind


class _AnnotationCollector(ast.NodeVisitor):
    """Collect annotation strings from the *original* (un-erased) tree."""

    def __init__(self) -> None:
        self.annotations: dict[SymbolKey, str] = {}
        self._scope: list[str] = ["module"]

    @property
    def scope_path(self) -> str:
        return ".".join(self._scope)

    def _record(self, name: str, kind: SymbolKind, annotation: Optional[ast.expr], scope: Optional[str] = None) -> None:
        if annotation is None:
            return
        key = SymbolKey(scope or self.scope_path, name, kind)
        self.annotations[key] = ast.unparse(annotation)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scope.append(node.name)
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            self._record(arg.arg, SymbolKind.PARAMETER, arg.annotation)
        if args.vararg is not None:
            self._record(args.vararg.arg, SymbolKind.PARAMETER, args.vararg.annotation)
        if args.kwarg is not None:
            self._record(args.kwarg.arg, SymbolKind.PARAMETER, args.kwarg.annotation)
        self._record(RETURN_SYMBOL_NAME, SymbolKind.FUNCTION_RETURN, node.returns)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            self._record(target.id, SymbolKind.VARIABLE, node.annotation)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            # self.attr annotations belong to the enclosing class scope.
            class_scope = ".".join(self._scope[:-1]) if len(self._scope) > 1 else self.scope_path
            self._record(f"self.{target.attr}", SymbolKind.VARIABLE, node.annotation, scope=class_scope)
        self.generic_visit(node)


class _AnnotationEraser(ast.NodeTransformer):
    """Remove every type annotation from the tree, preserving structure."""

    def _erase_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.AST:
        self.generic_visit(node)
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            arg.annotation = None
        if args.vararg is not None:
            args.vararg.annotation = None
        if args.kwarg is not None:
            args.kwarg.annotation = None
        node.returns = None
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return self._erase_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> ast.AST:
        return self._erase_function(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.AST:
        self.generic_visit(node)
        value = node.value if node.value is not None else ast.Constant(value=None)
        return ast.copy_location(ast.Assign(targets=[node.target], value=value), node)


def collect_annotations(source: str) -> dict[SymbolKey, str]:
    """Return the annotation map ``(scope, name, kind) -> annotation string``."""
    collector = _AnnotationCollector()
    collector.visit(ast.parse(source))
    return collector.annotations


def erase_annotations(source: str) -> str:
    """Return ``source`` re-generated with every type annotation removed."""
    tree = _AnnotationEraser().visit(ast.parse(source))
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


@dataclass
class _Scope:
    """A lexical scope with its locally defined symbols."""

    path: str
    parent: Optional["_Scope"]
    is_class: bool = False
    symbols: dict[str, SymbolInfo] = field(default_factory=dict)

    def resolve(self, name: str) -> Optional[SymbolInfo]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            # Class scopes are not visible from nested function scopes in
            # Python's name resolution, except for self.* symbols which we
            # address explicitly by their dotted name.
            scope = scope.parent
        return None


def _assigned_names(node: ast.AST) -> set[str]:
    """Names bound by assignment-like statements directly in a scope body.

    The traversal stops at nested function, class and lambda definitions so
    that names local to an inner scope are not hoisted into the outer one.
    """
    names: set[str] = set()
    _collect_assigned_names(node, names, is_root=True)
    return names


def _collect_assigned_names(node: ast.AST, names: set[str], is_root: bool = False) -> None:
    if not is_root and isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    ):
        return
    if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
        names.add(node.id)
    for child in ast.iter_child_nodes(node):
        _collect_assigned_names(child, names)


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------


class GraphBuilder:
    """Builds :class:`~repro.graph.codegraph.CodeGraph` objects from source.

    Parameters
    ----------
    include_edges:
        Optional subset of :class:`EdgeKind` to keep (used by the ablation
        experiments).  ``None`` keeps all edge kinds.
    """

    def __init__(self, include_edges: Optional[Iterable[EdgeKind]] = None) -> None:
        self.include_edges = set(include_edges) if include_edges is not None else None

    # -- public API --------------------------------------------------------------

    def build(self, source: str, filename: str = "<string>") -> CodeGraph:
        try:
            annotations = collect_annotations(source)
            erased = erase_annotations(source)
            tree = ast.parse(erased)
        except SyntaxError as error:
            raise GraphBuildError(f"cannot parse {filename}: {error}") from error

        arena = FlatGraphBuilder(filename=filename, source=erased)
        state = _BuildState(graph=arena, annotations=annotations)
        state.add_tokens(erased)
        state.walk_module(tree)
        state.run_dataflow()
        state.add_subtoken_edges()
        state.attach_annotations()
        flat = arena.finish()
        flat.validate()

        if self.include_edges is not None:
            excluded = set(EdgeKind) - self.include_edges
            flat = flat.without_edges(excluded)
        return CodeGraph.from_flat(flat)

    def build_file(self, path: str) -> CodeGraph:
        with open(path, "r", encoding="utf-8") as handle:
            return self.build(handle.read(), filename=path)


@dataclass
class _FunctionContext:
    """Per-function bookkeeping used while walking the AST."""

    scope: _Scope
    node_index: int
    return_symbol: SymbolInfo


class _BuildState:
    """Mutable state of a single graph construction.

    ``graph`` is the :class:`FlatGraphBuilder` arena the walk appends nodes,
    edges and symbols into — no intermediate object graph is built.
    """

    def __init__(self, graph: FlatGraphBuilder, annotations: dict[SymbolKey, str]) -> None:
        self.graph = graph
        self.annotations = annotations
        self.token_index_at: dict[tuple[int, int], int] = {}
        self.token_order: list[int] = []
        self.vocabulary_nodes: dict[str, int] = {}
        self.scopes: list[tuple[_Scope, list[ast.stmt]]] = []
        self.function_stack: list[_FunctionContext] = []
        self.scope_stack: list[_Scope] = []

    # -- token pass ---------------------------------------------------------------

    def add_tokens(self, source: str) -> None:
        graph = self.graph
        previous: Optional[int] = None
        try:
            tokens = list(tokenize_module.generate_tokens(io.StringIO(source).readline))
        except tokenize_module.TokenError as error:  # pragma: no cover - defensive
            raise GraphBuildError(f"tokenisation failed: {error}") from error
        for token in tokens:
            if token.type not in _KEPT_TOKEN_TYPES or not token.string:
                continue
            index = graph.add_node(
                NodeKind.TOKEN, token.string, lineno=token.start[0], col=token.start[1]
            )
            self.token_index_at[(token.start[0], token.start[1])] = index
            self.token_order.append(index)
            if previous is not None:
                graph.add_edge(EdgeKind.NEXT_TOKEN, previous, index)
            previous = index

    def token_at(self, lineno: int, col: int) -> Optional[int]:
        return self.token_index_at.get((lineno, col))

    # -- scope / symbol helpers -----------------------------------------------------

    @property
    def current_scope(self) -> _Scope:
        return self.scope_stack[-1]

    def _declare_symbol(
        self, name: str, kind: SymbolKind, scope: _Scope, lineno: int = -1
    ) -> SymbolInfo:
        if name in scope.symbols:
            return scope.symbols[name]
        info = self.graph.add_symbol(name, kind, scope.path, lineno=lineno)
        scope.symbols[name] = info
        return info

    def _record_occurrence(self, symbol: SymbolInfo, node_index: int) -> None:
        self.graph.add_edge(EdgeKind.OCCURRENCE_OF, node_index, symbol.node_index)
        symbol.occurrence_indices.append(node_index)

    # -- AST walk ---------------------------------------------------------------------

    def walk_module(self, tree: ast.Module) -> None:
        module_scope = _Scope(path="module", parent=None)
        self.scope_stack.append(module_scope)
        self.scopes.append((module_scope, list(tree.body)))
        for name in _assigned_names(tree):
            self._declare_symbol(name, SymbolKind.VARIABLE, module_scope)
        module_node = self.graph.add_node(NodeKind.NON_TERMINAL, "Module")
        for statement in tree.body:
            child_index = self.visit(statement)
            self.graph.add_edge(EdgeKind.CHILD, module_node, child_index)
        self.scope_stack.pop()

    def visit(self, node: ast.AST) -> int:
        """Create the non-terminal node for ``node`` and recurse into children."""
        label = type(node).__name__
        lineno = getattr(node, "lineno", -1)
        col = getattr(node, "col_offset", -1)
        node_index = self.graph.add_node(NodeKind.NON_TERMINAL, label, lineno=lineno, col=col)

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node, node_index)
        elif isinstance(node, ast.ClassDef):
            self._visit_class(node, node_index)
        else:
            self._visit_generic(node, node_index)

        self._add_node_specific_edges(node, node_index)
        return node_index

    def _visit_children(self, node: ast.AST, node_index: int) -> None:
        for child in ast.iter_child_nodes(node):
            child_index = self.visit(child)
            self.graph.add_edge(EdgeKind.CHILD, node_index, child_index)

    def _visit_generic(self, node: ast.AST, node_index: int) -> None:
        if isinstance(node, ast.Name):
            self._handle_name(node, node_index)
        elif isinstance(node, ast.Attribute):
            self._handle_attribute(node, node_index)
        elif isinstance(node, ast.arg):
            self._handle_parameter(node, node_index)
        self._link_token(node, node_index)
        self._visit_children(node, node_index)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef, node_index: int) -> None:
        enclosing = self.current_scope
        scope = _Scope(path=f"{enclosing.path}.{node.name}", parent=enclosing)
        # Parameters.
        args = node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg is not None:
            all_args.append(args.vararg)
        if args.kwarg is not None:
            all_args.append(args.kwarg)
        for arg in all_args:
            self._declare_symbol(arg.arg, SymbolKind.PARAMETER, scope, lineno=arg.lineno)
        # Local variables.
        for name in _assigned_names(node):
            if name not in scope.symbols:
                self._declare_symbol(name, SymbolKind.VARIABLE, scope, lineno=node.lineno)
        # Return symbol; the function definition node is one of its occurrences.
        return_symbol = self._declare_symbol(
            RETURN_SYMBOL_NAME, SymbolKind.FUNCTION_RETURN, scope, lineno=node.lineno
        )
        self._record_occurrence(return_symbol, node_index)
        name_token = self.token_at(node.lineno, node.col_offset + len("def "))
        if name_token is not None:
            self._record_occurrence(return_symbol, name_token)

        context = _FunctionContext(scope=scope, node_index=node_index, return_symbol=return_symbol)
        self.function_stack.append(context)
        self.scope_stack.append(scope)
        self.scopes.append((scope, list(node.body)))
        self._visit_children(node, node_index)
        self.scope_stack.pop()
        self.function_stack.pop()

    def _visit_class(self, node: ast.ClassDef, node_index: int) -> None:
        enclosing = self.current_scope
        scope = _Scope(path=f"{enclosing.path}.{node.name}", parent=enclosing, is_class=True)
        for name in _assigned_names(node):
            self._declare_symbol(name, SymbolKind.VARIABLE, scope, lineno=node.lineno)
        self.scope_stack.append(scope)
        self._visit_children(node, node_index)
        self.scope_stack.pop()

    # -- per-node-type edges -----------------------------------------------------------

    def _handle_name(self, node: ast.Name, node_index: int) -> None:
        symbol = self.current_scope.resolve(node.id)
        if symbol is None:
            return
        self._record_occurrence(symbol, node_index)
        token = self.token_at(node.lineno, node.col_offset)
        if token is not None:
            self._record_occurrence(symbol, token)

    def _handle_attribute(self, node: ast.Attribute, node_index: int) -> None:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        class_scope = self._enclosing_class_scope()
        if class_scope is None:
            return
        dotted = f"self.{node.attr}"
        symbol = class_scope.symbols.get(dotted)
        if symbol is None and isinstance(node.ctx, ast.Store):
            symbol = self._declare_symbol(dotted, SymbolKind.VARIABLE, class_scope, lineno=node.lineno)
        if symbol is not None:
            self._record_occurrence(symbol, node_index)

    def _handle_parameter(self, node: ast.arg, node_index: int) -> None:
        symbol = self.current_scope.resolve(node.arg)
        if symbol is None:
            return
        self._record_occurrence(symbol, node_index)
        token = self.token_at(node.lineno, node.col_offset)
        if token is not None:
            self._record_occurrence(symbol, token)

    def _enclosing_class_scope(self) -> Optional[_Scope]:
        for scope in reversed(self.scope_stack):
            if scope.is_class:
                return scope
        return None

    def _link_token(self, node: ast.AST, node_index: int) -> None:
        """Connect a leaf-ish AST node to the token at its source position."""
        if isinstance(node, (ast.Name, ast.Constant, ast.arg)):
            lineno = getattr(node, "lineno", None)
            col = getattr(node, "col_offset", None)
            if lineno is None or col is None:
                return
            token = self.token_at(lineno, col)
            if token is not None:
                self.graph.add_edge(EdgeKind.CHILD, node_index, token)

    def _add_node_specific_edges(self, node: ast.AST, node_index: int) -> None:
        graph = self.graph
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and self.function_stack:
            context = self.function_stack[-1]
            graph.add_edge(EdgeKind.RETURNS_TO, node_index, context.node_index)
            self._record_occurrence(context.return_symbol, node_index)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            # ASSIGNED_FROM: value flows into each target.  The child
            # non-terminal nodes were created during the recursive visit; we
            # find them by scanning the CHILD edges added from this node.
            self._add_assigned_from(node, node_index)

    def _add_assigned_from(self, node: ast.Assign | ast.AugAssign, node_index: int) -> None:
        graph = self.graph
        children = [target for source, target in graph.edge_pairs(EdgeKind.CHILD) if source == node_index]
        if not children:
            return
        child_nodes = [(index, graph.node_kind_of(index), graph.node_text_of(index)) for index in children]
        value_label = type(node.value).__name__
        value_candidates = [
            index for index, kind, text in child_nodes if kind == NodeKind.NON_TERMINAL and text == value_label
        ]
        if not value_candidates:
            return
        value_index = value_candidates[-1]
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        target_labels = {type(target).__name__ for target in targets}
        for index, kind, text in child_nodes:
            if index == value_index or kind != NodeKind.NON_TERMINAL:
                continue
            if text in target_labels:
                graph.add_edge(EdgeKind.ASSIGNED_FROM, value_index, index)

    # -- dataflow pass ---------------------------------------------------------------------

    def run_dataflow(self) -> None:
        next_lexical: set[tuple[int, int]] = set()
        next_may_use: set[tuple[int, int]] = set()
        for scope, body in self.scopes:
            events_in_scope: list[UseEvent] = []
            initial_last: dict[str, set[int]] = {}
            # Parameter definitions are the first "use" of each parameter, so
            # they enter both relations ahead of the body.
            for symbol in scope.symbols.values():
                if symbol.kind != SymbolKind.PARAMETER:
                    continue
                token_occurrences = [
                    index
                    for index in symbol.occurrence_indices
                    if self.graph.node_kind_of(index) == NodeKind.TOKEN
                ]
                if not token_occurrences:
                    continue
                first = token_occurrences[0]
                events_in_scope.append(
                    UseEvent(
                        name=symbol.qualified_name,
                        occurrence_id=first,
                        lineno=self.graph.node_line_of(first),
                        col=self.graph.node_col_of(first),
                    )
                )
                initial_last[symbol.qualified_name] = {first}

            def uses_of(node: ast.AST, scope: _Scope = scope, sink: list[UseEvent] = events_in_scope) -> list[UseEvent]:
                events = self._uses_in(node, scope)
                sink.extend(events)
                return events

            analysis = NextMayUseAnalysis(uses_of)
            analysis.analyse_body(body, initial=initial_last)
            next_may_use.update(analysis.pairs)
            next_lexical.update(compute_next_lexical_use(events_in_scope))

        for source_token, target_token in sorted(next_lexical):
            self.graph.add_edge(EdgeKind.NEXT_LEXICAL_USE, source_token, target_token)
        for source_token, target_token in sorted(next_may_use):
            self.graph.add_edge(EdgeKind.NEXT_MAY_USE, source_token, target_token)

    def _uses_in(self, node: ast.AST, scope: _Scope) -> list[UseEvent]:
        """Lexically ordered occurrences of resolvable names within ``node``."""
        events: list[UseEvent] = []
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)) and child is not node:
                continue
            if not isinstance(child, ast.Name):
                continue
            symbol = scope.resolve(child.id)
            if symbol is None:
                continue
            token = self.token_at(child.lineno, child.col_offset)
            if token is None:
                continue
            events.append(
                UseEvent(
                    name=symbol.qualified_name,
                    occurrence_id=token,
                    lineno=child.lineno,
                    col=child.col_offset,
                )
            )
        events.sort(key=lambda event: (event.lineno, event.col))
        return events

    # -- subtokens --------------------------------------------------------------------------

    def add_subtoken_edges(self) -> None:
        graph = self.graph
        from repro.graph.flatgraph import NODE_KIND_CODES

        eligible = (NODE_KIND_CODES[NodeKind.TOKEN], NODE_KIND_CODES[NodeKind.SYMBOL])
        # Split each interned lexeme once; nodes sharing a text share the result.
        splits_by_text_id: dict[int, list[str]] = {}
        identifier_nodes = [
            (index, text_id)
            for index, (kind_code, text_id) in enumerate(
                zip(graph.iter_kind_codes(), graph.iter_text_ids())
            )
            if kind_code in eligible and is_identifier_text(graph.strings[text_id])
        ]
        for node_index, text_id in identifier_nodes:
            subtokens = splits_by_text_id.get(text_id)
            if subtokens is None:
                subtokens = split_identifier(graph.strings[text_id])
                splits_by_text_id[text_id] = subtokens
            for subtoken in subtokens:
                vocab_index = self.vocabulary_nodes.get(subtoken)
                if vocab_index is None:
                    vocab_index = graph.add_node(NodeKind.VOCABULARY, subtoken)
                    self.vocabulary_nodes[subtoken] = vocab_index
                graph.add_edge(EdgeKind.SUBTOKEN_OF, node_index, vocab_index)

    # -- annotations --------------------------------------------------------------------------

    def attach_annotations(self) -> None:
        for symbol in self.graph.symbols:
            key = SymbolKey(symbol.scope, symbol.name, symbol.kind)
            if key in self.annotations:
                symbol.annotation = self.annotations[key]


def build_graph(source: str, filename: str = "<string>", include_edges: Optional[Iterable[EdgeKind]] = None) -> CodeGraph:
    """Convenience wrapper: build the graph of one source string."""
    return GraphBuilder(include_edges=include_edges).build(source, filename=filename)
