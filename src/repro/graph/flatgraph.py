"""Arena/columnar program-graph storage: the :class:`FlatGraph` core.

Every layer downstream of graph extraction — featurization, batch assembly,
dataset persistence, the annotation engine — used to traverse graphs made of
one :class:`~repro.graph.nodes.GraphNode` dataclass per node, a dict of
Python tuple lists per edge kind and one :class:`SymbolInfo` per symbol.
At corpus scale that is millions of small heap objects and repeated string
keys on every hot path.

This module stores the same information as a handful of flat arrays:

* an **interned string table** — every node text, symbol name, scope and
  annotation appears exactly once; nodes refer to strings by ``int32`` id;
* ``int32`` **node columns** — kind code, text id, line, column — one entry
  per node, laid out struct-of-arrays;
* one contiguous ``(2, E_k) int32`` **edge array** per
  :class:`~repro.graph.edges.EdgeKind` (insertion order preserved);
* **struct-of-arrays symbol storage** — node index, name id, kind code,
  scope id, annotation id (``-1`` for unannotated), line number — plus a
  CSR pair (``occurrence_ids`` / ``occurrence_splits``) holding every
  symbol's occurrence node indices.

:class:`FlatGraphBuilder` is the *arena* the graph builder appends into
while walking a file; :meth:`FlatGraphBuilder.finish` freezes the arena
into an immutable :class:`FlatGraph`.  :class:`~repro.graph.codegraph.CodeGraph`
remains the public container type but is now a thin lazy view over these
arrays — object nodes/edges/symbols are only materialised when legacy code
asks for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.graph.edges import ALL_EDGE_KINDS, EdgeKind
from repro.graph.nodes import NodeKind, SymbolInfo, SymbolKind, is_identifier_text

__all__ = [
    "FlatGraph",
    "FlatGraphBuilder",
    "StringTable",
    "flatten_graph",
    "rebuild_symbol_columns",
    "is_identifier_text",
]

#: Stable integer codes for node / symbol kinds (enum declaration order).
NODE_KIND_ORDER: tuple[NodeKind, ...] = tuple(NodeKind)
NODE_KIND_CODES: dict[NodeKind, int] = {kind: code for code, kind in enumerate(NODE_KIND_ORDER)}
SYMBOL_KIND_ORDER: tuple[SymbolKind, ...] = tuple(SymbolKind)
SYMBOL_KIND_CODES: dict[SymbolKind, int] = {kind: code for code, kind in enumerate(SYMBOL_KIND_ORDER)}

#: Sentinel annotation id for "symbol has no ground-truth annotation".
NO_ANNOTATION = -1

_EMPTY_EDGES = np.zeros((2, 0), dtype=np.int32)


class StringTable:
    """Append-only intern table: text → dense ``int32`` id."""

    __slots__ = ("strings", "_index")

    def __init__(self, strings: Optional[Iterable[str]] = None) -> None:
        self.strings: list[str] = list(strings) if strings is not None else []
        self._index: dict[str, int] = {text: i for i, text in enumerate(self.strings)}

    def intern(self, text: str) -> int:
        index = self._index.get(text)
        if index is None:
            index = len(self.strings)
            self.strings.append(text)
            self._index[text] = index
        return index

    def __len__(self) -> int:
        return len(self.strings)

    def __getitem__(self, index: int) -> str:
        return self.strings[index]


@dataclass(eq=False)
class FlatGraph:
    """Columnar storage of one file's program graph.

    All arrays are ``int32``; ``strings`` is the intern table every text
    column indexes into.  Instances are treated as immutable — consumers
    take zero-copy views of the arrays and never write to them.  Equality
    is identity (``eq=False``): an auto-generated field-wise ``__eq__``
    would hit NumPy's ambiguous array truthiness; compare graphs through
    their :class:`~repro.graph.codegraph.CodeGraph` views or serialized
    payloads instead.
    """

    filename: str
    source: str
    strings: tuple[str, ...]
    node_kind: np.ndarray  # (N,) NodeKind codes
    node_text: np.ndarray  # (N,) string-table ids
    node_line: np.ndarray  # (N,)
    node_col: np.ndarray  # (N,)
    edges: dict[EdgeKind, np.ndarray]  # kind -> (2, E_k), rows = (source, target)
    symbol_node: np.ndarray  # (S,) node index of each symbol node
    symbol_name: np.ndarray  # (S,) string-table ids
    symbol_kind: np.ndarray  # (S,) SymbolKind codes
    symbol_scope: np.ndarray  # (S,) string-table ids
    symbol_annotation: np.ndarray  # (S,) string-table ids, NO_ANNOTATION for none
    symbol_line: np.ndarray  # (S,)
    occurrence_ids: np.ndarray  # (sum of occurrences,) node indices, CSR values
    occurrence_splits: np.ndarray  # (S + 1,) CSR row splits
    _subtoken_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # -- sizes ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return int(self.node_kind.shape[0])

    @property
    def num_symbols(self) -> int:
        return int(self.symbol_node.shape[0])

    @property
    def num_edges(self) -> int:
        return sum(int(pairs.shape[1]) for pairs in self.edges.values())

    @property
    def nbytes(self) -> int:
        """Resident bytes of this graph's columns, strings and source text.

        The array columns are exact (``ndarray.nbytes``); strings count one
        byte per character — an underestimate of CPython object headers but
        proportional to the real footprint, which is what a byte-bounded
        cache needs to make eviction decisions.
        """
        total = (
            self.node_kind.nbytes
            + self.node_text.nbytes
            + self.node_line.nbytes
            + self.node_col.nbytes
            + self.symbol_node.nbytes
            + self.symbol_name.nbytes
            + self.symbol_kind.nbytes
            + self.symbol_scope.nbytes
            + self.symbol_annotation.nbytes
            + self.symbol_line.nbytes
            + self.occurrence_ids.nbytes
            + self.occurrence_splits.nbytes
        )
        total += sum(pairs.nbytes for pairs in self.edges.values())
        total += len(self.source)
        total += sum(len(text) for text in self.strings)
        return int(total)

    # -- node queries -----------------------------------------------------------

    def node_texts(self) -> list[str]:
        """Every node's text, resolved through the intern table."""
        return [self.strings[i] for i in self.node_text.tolist()]

    def text_of(self, node_index: int) -> str:
        return self.strings[int(self.node_text[node_index])]

    def kind_of(self, node_index: int) -> NodeKind:
        return NODE_KIND_ORDER[int(self.node_kind[node_index])]

    def node_indices_of_kind(self, kind: NodeKind) -> np.ndarray:
        return np.flatnonzero(self.node_kind == NODE_KIND_CODES[kind])

    def count_of_kind(self, kind: NodeKind) -> int:
        return int(np.count_nonzero(self.node_kind == NODE_KIND_CODES[kind]))

    def edge_array(self, kind: EdgeKind) -> np.ndarray:
        """The ``(2, E)`` array of one edge kind (empty view when absent)."""
        return self.edges.get(kind, _EMPTY_EDGES)

    # -- symbol queries ----------------------------------------------------------

    def occurrences_of(self, symbol_position: int) -> np.ndarray:
        start = int(self.occurrence_splits[symbol_position])
        stop = int(self.occurrence_splits[symbol_position + 1])
        return self.occurrence_ids[start:stop]

    def annotation_of(self, symbol_position: int) -> Optional[str]:
        annotation_id = int(self.symbol_annotation[symbol_position])
        return None if annotation_id == NO_ANNOTATION else self.strings[annotation_id]

    def materialise_symbols(self) -> list[SymbolInfo]:
        """Rebuild per-symbol :class:`SymbolInfo` records (compat path)."""
        strings = self.strings
        nodes = self.symbol_node.tolist()
        names = self.symbol_name.tolist()
        kinds = self.symbol_kind.tolist()
        scopes = self.symbol_scope.tolist()
        annotations = self.symbol_annotation.tolist()
        lines = self.symbol_line.tolist()
        occurrences = self.occurrence_ids.tolist()
        splits = self.occurrence_splits.tolist()
        return [
            SymbolInfo(
                node_index=nodes[i],
                name=strings[names[i]],
                kind=SYMBOL_KIND_ORDER[kinds[i]],
                scope=strings[scopes[i]],
                annotation=None if annotations[i] == NO_ANNOTATION else strings[annotations[i]],
                lineno=lines[i],
                occurrence_indices=occurrences[splits[i] : splits[i + 1]],
            )
            for i in range(len(nodes))
        ]

    # -- derived structures -------------------------------------------------------

    def node_subtokens(self):
        """Yield ``(node_index, subtokens)`` per node, splitting each unique
        lexeme exactly once (the intern table is the memo)."""
        from repro.graph.subtokens import split_identifier

        cache = self._subtoken_cache
        for node_index, text_id in enumerate(self.node_text.tolist()):
            subtokens = cache.get(text_id)
            if subtokens is None:
                subtokens = split_identifier(self.strings[text_id])
                cache[text_id] = subtokens
            yield node_index, subtokens

    def without_edges(self, excluded: Iterable[EdgeKind]) -> "FlatGraph":
        """A copy sharing all arrays except the excluded edge kinds."""
        excluded_set = set(excluded)
        return replace(
            self,
            edges={kind: pairs for kind, pairs in self.edges.items() if kind not in excluded_set},
            _subtoken_cache=self._subtoken_cache,
        )

    def with_filename(self, filename: str) -> "FlatGraph":
        """This graph relabelled (content-addressed cache hits on renames)."""
        if filename == self.filename:
            return self
        return replace(self, filename=filename, _subtoken_cache=self._subtoken_cache)

    # -- consistency --------------------------------------------------------------

    def validate(self) -> None:
        """Vectorised consistency check; raises ``ValueError`` on violation."""
        num_nodes = self.num_nodes
        for kind, pairs in self.edges.items():
            if pairs.size and (pairs.min() < 0 or pairs.max() >= num_nodes):
                raise ValueError(f"dangling edge {kind.value} in {self.filename}")
        if self.node_text.size and int(self.node_text.max()) >= len(self.strings):
            raise ValueError("node text id out of string-table range")
        symbol_code = NODE_KIND_CODES[NodeKind.SYMBOL]
        for position in range(self.num_symbols):
            node_index = int(self.symbol_node[position])
            if not 0 <= node_index < num_nodes or int(self.node_kind[node_index]) != symbol_code:
                raise ValueError(
                    f"symbol {self.strings[int(self.symbol_name[position])]} does not point at a symbol node"
                )
        if self.occurrence_ids.size and (
            self.occurrence_ids.min() < 0 or self.occurrence_ids.max() >= num_nodes
        ):
            raise ValueError("symbol occurrence references a missing node")


class FlatGraphBuilder:
    """The mutable arena a single graph construction appends into.

    Mirrors the old ``CodeGraph`` construction API (``add_node`` /
    ``add_edge`` / ``add_symbol``) but stores columns of plain ints and an
    intern table instead of per-node objects.  Symbols are accumulated as
    :class:`SymbolInfo` records (they are few and the AST walk mutates them
    freely); :meth:`finish` freezes everything into a :class:`FlatGraph`.
    """

    def __init__(self, filename: str = "<unknown>", source: str = "") -> None:
        self.filename = filename
        self.source = source
        self.strings = StringTable()
        self._node_kind: list[int] = []
        self._node_text: list[int] = []
        self._node_line: list[int] = []
        self._node_col: list[int] = []
        self._edges: dict[EdgeKind, list[tuple[int, int]]] = {}
        self.symbols: list[SymbolInfo] = []

    # -- construction -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._node_kind)

    def add_node(self, kind: NodeKind, text: str, lineno: int = -1, col: int = -1) -> int:
        index = len(self._node_kind)
        self._node_kind.append(NODE_KIND_CODES[kind])
        self._node_text.append(self.strings.intern(text))
        self._node_line.append(lineno)
        self._node_col.append(col)
        return index

    def add_edge(self, kind: EdgeKind, source: int, target: int) -> None:
        if source == target:
            return
        if not (0 <= source < self.num_nodes and 0 <= target < self.num_nodes):
            raise IndexError(
                f"edge {kind.value} references missing node ({source}, {target}); "
                f"graph has {self.num_nodes} nodes"
            )
        self._edges.setdefault(kind, []).append((source, target))

    def add_symbol(
        self,
        name: str,
        kind: SymbolKind,
        scope: str,
        annotation: Optional[str] = None,
        lineno: int = -1,
    ) -> SymbolInfo:
        node_index = self.add_node(NodeKind.SYMBOL, name, lineno=lineno)
        info = SymbolInfo(
            node_index=node_index,
            name=name,
            kind=kind,
            scope=scope,
            annotation=annotation,
            lineno=lineno,
        )
        self.symbols.append(info)
        return info

    # -- read access during the build ------------------------------------------------

    def node_kind_of(self, index: int) -> NodeKind:
        return NODE_KIND_ORDER[self._node_kind[index]]

    def node_text_of(self, index: int) -> str:
        return self.strings[self._node_text[index]]

    def node_line_of(self, index: int) -> int:
        return self._node_line[index]

    def node_col_of(self, index: int) -> int:
        return self._node_col[index]

    def edge_pairs(self, kind: EdgeKind) -> list[tuple[int, int]]:
        """The live pair list of one edge kind (read-only by convention)."""
        return self._edges.get(kind, [])

    def iter_kind_codes(self) -> list[int]:
        return self._node_kind

    def iter_text_ids(self) -> list[int]:
        return self._node_text

    # -- freezing ----------------------------------------------------------------------

    def finish(self) -> FlatGraph:
        """Freeze the arena into an immutable :class:`FlatGraph`."""
        edges = {
            kind: np.asarray(pairs, dtype=np.int32).reshape(len(pairs), 2).T.copy()
            for kind, pairs in self._edges.items()
            if pairs
        }
        num_symbols = len(self.symbols)
        symbol_node = np.zeros(num_symbols, dtype=np.int32)
        symbol_name = np.zeros(num_symbols, dtype=np.int32)
        symbol_kind = np.zeros(num_symbols, dtype=np.int32)
        symbol_scope = np.zeros(num_symbols, dtype=np.int32)
        symbol_annotation = np.full(num_symbols, NO_ANNOTATION, dtype=np.int32)
        symbol_line = np.zeros(num_symbols, dtype=np.int32)
        splits = np.zeros(num_symbols + 1, dtype=np.int32)
        occurrence_chunks: list[list[int]] = []
        for position, symbol in enumerate(self.symbols):
            symbol_node[position] = symbol.node_index
            symbol_name[position] = self.strings.intern(symbol.name)
            symbol_kind[position] = SYMBOL_KIND_CODES[symbol.kind]
            symbol_scope[position] = self.strings.intern(symbol.scope)
            if symbol.annotation is not None:
                symbol_annotation[position] = self.strings.intern(symbol.annotation)
            symbol_line[position] = symbol.lineno
            occurrence_chunks.append(symbol.occurrence_indices)
            splits[position + 1] = splits[position] + len(symbol.occurrence_indices)
        occurrence_ids = (
            np.asarray([index for chunk in occurrence_chunks for index in chunk], dtype=np.int32)
            if occurrence_chunks
            else np.zeros(0, dtype=np.int32)
        )
        return FlatGraph(
            filename=self.filename,
            source=self.source,
            strings=tuple(self.strings.strings),
            node_kind=np.asarray(self._node_kind, dtype=np.int32),
            node_text=np.asarray(self._node_text, dtype=np.int32),
            node_line=np.asarray(self._node_line, dtype=np.int32),
            node_col=np.asarray(self._node_col, dtype=np.int32),
            edges=edges,
            symbol_node=symbol_node,
            symbol_name=symbol_name,
            symbol_kind=symbol_kind,
            symbol_scope=symbol_scope,
            symbol_annotation=symbol_annotation,
            symbol_line=symbol_line,
            occurrence_ids=occurrence_ids,
            occurrence_splits=splits,
        )


def _symbols_match_columns(flat: FlatGraph, symbols: Sequence[SymbolInfo]) -> bool:
    """Whether the live symbol objects still equal the stored columns."""
    if len(symbols) != flat.num_symbols:
        return False
    strings = flat.strings
    nodes = flat.symbol_node.tolist()
    names = flat.symbol_name.tolist()
    kinds = flat.symbol_kind.tolist()
    scopes = flat.symbol_scope.tolist()
    annotations = flat.symbol_annotation.tolist()
    lines = flat.symbol_line.tolist()
    occurrences = flat.occurrence_ids.tolist()
    splits = flat.occurrence_splits.tolist()
    for i, symbol in enumerate(symbols):
        stored_annotation = None if annotations[i] == NO_ANNOTATION else strings[annotations[i]]
        if (
            symbol.node_index != nodes[i]
            or symbol.lineno != lines[i]
            or SYMBOL_KIND_CODES[symbol.kind] != kinds[i]
            or symbol.annotation != stored_annotation
            or symbol.name != strings[names[i]]
            or symbol.scope != strings[scopes[i]]
            or symbol.occurrence_indices != occurrences[splits[i] : splits[i + 1]]
        ):
            return False
    return True


def rebuild_symbol_columns(flat: FlatGraph, symbols: Sequence[SymbolInfo]) -> FlatGraph:
    """``flat`` with its symbol columns rebuilt from live symbol objects.

    The :class:`~repro.graph.codegraph.CodeGraph` view keeps symbols
    object-backed (callers hold and occasionally mutate them), so
    persistence re-derives the symbol arrays — and any newly introduced
    name/scope/annotation strings — from the objects while reusing the node
    and edge arrays untouched.  When the objects still match the stored
    columns (the common case: nobody edited them), the original arrays are
    returned as-is.
    """
    if _symbols_match_columns(flat, symbols):
        return flat
    table = StringTable(flat.strings)
    intern = table.intern
    symbol_node: list[int] = []
    symbol_name: list[int] = []
    symbol_kind: list[int] = []
    symbol_scope: list[int] = []
    symbol_annotation: list[int] = []
    symbol_line: list[int] = []
    counts: list[int] = []
    occurrences: list[int] = []
    for symbol in symbols:
        symbol_node.append(symbol.node_index)
        symbol_name.append(intern(symbol.name))
        symbol_kind.append(SYMBOL_KIND_CODES[symbol.kind])
        symbol_scope.append(intern(symbol.scope))
        symbol_annotation.append(
            NO_ANNOTATION if symbol.annotation is None else intern(symbol.annotation)
        )
        symbol_line.append(symbol.lineno)
        counts.append(len(symbol.occurrence_indices))
        occurrences.extend(symbol.occurrence_indices)
    splits = np.zeros(len(symbols) + 1, dtype=np.int32)
    np.cumsum(counts, out=splits[1:])
    return replace(
        flat,
        strings=tuple(table.strings),
        symbol_node=np.asarray(symbol_node, dtype=np.int32),
        symbol_name=np.asarray(symbol_name, dtype=np.int32),
        symbol_kind=np.asarray(symbol_kind, dtype=np.int32),
        symbol_scope=np.asarray(symbol_scope, dtype=np.int32),
        symbol_annotation=np.asarray(symbol_annotation, dtype=np.int32),
        symbol_line=np.asarray(symbol_line, dtype=np.int32),
        occurrence_ids=np.asarray(occurrences, dtype=np.int32),
        occurrence_splits=splits,
        _subtoken_cache=flat._subtoken_cache,
    )


def flatten_graph(
    filename: str,
    source: str,
    nodes: Sequence,
    edges: dict[EdgeKind, Sequence[tuple[int, int]]],
    symbols: Sequence[SymbolInfo],
) -> FlatGraph:
    """Flatten materialised node/edge/symbol objects into a :class:`FlatGraph`.

    The inverse of :meth:`FlatGraph.materialise_symbols` + node/edge
    reconstruction; used when an object-built graph (legacy JSON payloads,
    hand-constructed test graphs) enters a flat-only path such as binary
    shard persistence.
    """
    arena = FlatGraphBuilder(filename=filename, source=source)
    for node in nodes:
        arena._node_kind.append(NODE_KIND_CODES[node.kind])
        arena._node_text.append(arena.strings.intern(node.text))
        arena._node_line.append(node.lineno)
        arena._node_col.append(node.col)
    for kind in ALL_EDGE_KINDS:
        pairs = edges.get(kind)
        if pairs:
            arena._edges[kind] = [(int(source), int(target)) for source, target in pairs]
    arena.symbols = list(symbols)
    return arena.finish()
