"""Node categories of the program graph (Sec. 5.1 of the paper).

The graph contains four categories of nodes:

* **token** nodes — raw lexemes of the program;
* **non-terminal** nodes — syntax-tree nodes;
* **vocabulary** nodes — one per distinct subtoken, shared across the file;
* **symbol** nodes — one per unique symbol in the symbol table (variable,
  parameter, or function return slot).

Symbol nodes are the "supernodes" whose final GNN state becomes the type
embedding ``r_s`` of the symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class NodeKind(str, Enum):
    """The four node categories used by the graph representation."""

    TOKEN = "token"
    NON_TERMINAL = "non_terminal"
    VOCABULARY = "vocabulary"
    SYMBOL = "symbol"


class SymbolKind(str, Enum):
    """What language element a symbol node stands for.

    Table 3 of the paper breaks performance down by these kinds, so the kind
    is recorded on the symbol node at graph-construction time.
    """

    VARIABLE = "variable"
    PARAMETER = "parameter"
    FUNCTION_RETURN = "function_return"


def is_identifier_text(text: str) -> bool:
    """Whether a lexeme contributes subtokens (Eq. 7): starts like a name.

    The single source of truth for subtoken eligibility — used by the
    arena builder's subtoken pass, :meth:`GraphNode.is_identifier_like`
    and path extraction, so the three can never disagree.
    """
    return bool(text) and (text[0].isalpha() or text[0] == "_")


@dataclass
class GraphNode:
    """A single node of the program graph.

    Attributes
    ----------
    index:
        Position of the node in the graph's node list.
    kind:
        One of the four :class:`NodeKind` categories.
    text:
        The identifier / lexeme / syntax-node label.  For vocabulary nodes
        this is the subtoken itself; for symbol nodes the symbol's name.
    lineno, col:
        Source position for token nodes (``-1`` when not applicable).
    """

    index: int
    kind: NodeKind
    text: str
    lineno: int = -1
    col: int = -1

    def is_identifier_like(self) -> bool:
        """Whether the node's text should contribute subtokens (Eq. 7)."""
        return is_identifier_text(self.text)


@dataclass
class SymbolInfo:
    """Supervision record attached to a symbol node.

    ``annotation`` holds the ground-truth type string collected *before*
    type erasure, or ``None`` when the symbol was unannotated in the source
    (such symbols are still prediction targets at inference time, but do not
    contribute to the supervised losses).
    """

    node_index: int
    name: str
    kind: SymbolKind
    scope: str
    annotation: Optional[str] = None
    lineno: int = -1
    occurrence_indices: list[int] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        return f"{self.scope}::{self.name}" if self.scope else self.name

    @property
    def is_annotated(self) -> bool:
        return self.annotation is not None
