"""Graph export utilities (DOT format), useful for debugging and examples."""

from __future__ import annotations

from repro.graph.codegraph import CodeGraph
from repro.graph.nodes import NodeKind

_NODE_STYLE = {
    NodeKind.TOKEN: 'shape=box, style=filled, fillcolor="#dbe9ff"',
    NodeKind.NON_TERMINAL: 'shape=ellipse, style=filled, fillcolor="#ffe7c2"',
    NodeKind.VOCABULARY: 'shape=diamond, style=filled, fillcolor="#e4ffd9"',
    NodeKind.SYMBOL: 'shape=hexagon, style=filled, fillcolor="#ffd9ec"',
}

_EDGE_COLOURS = {
    "NEXT_TOKEN": "#888888",
    "CHILD": "#2b6cb0",
    "NEXT_MAY_USE": "#c05621",
    "NEXT_LEXICAL_USE": "#b7791f",
    "ASSIGNED_FROM": "#276749",
    "RETURNS_TO": "#702459",
    "OCCURRENCE_OF": "#553c9a",
    "SUBTOKEN_OF": "#319795",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: CodeGraph, max_label_length: int = 24) -> str:
    """Render the graph as a Graphviz DOT string.

    Figure 3 of the paper shows a small example graph; this export makes it
    easy to regenerate similar figures from any snippet.
    """
    lines = ["digraph code_graph {", "  rankdir=LR;", "  node [fontsize=10];"]
    for node in graph.nodes:
        label = node.text if len(node.text) <= max_label_length else node.text[: max_label_length - 1] + "…"
        style = _NODE_STYLE[node.kind]
        lines.append(f'  n{node.index} [label="{_escape(label)}", {style}];')
    for kind, pairs in graph.edges.items():
        colour = _EDGE_COLOURS.get(kind.value, "#000000")
        for source, target in pairs:
            lines.append(
                f'  n{source} -> n{target} [label="{kind.value}", color="{colour}", fontsize=8];'
            )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: CodeGraph, path: str) -> str:
    """Write :func:`to_dot` output to ``path`` and return the path."""
    dot = to_dot(graph)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot)
    return path
