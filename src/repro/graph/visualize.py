"""Graph export utilities (DOT format), useful for debugging and examples."""

from __future__ import annotations

from typing import Union

from repro.graph.codegraph import CodeGraph
from repro.graph.edges import ALL_EDGE_KINDS
from repro.graph.flatgraph import FlatGraph
from repro.graph.nodes import NodeKind

_NODE_STYLE = {
    NodeKind.TOKEN: 'shape=box, style=filled, fillcolor="#dbe9ff"',
    NodeKind.NON_TERMINAL: 'shape=ellipse, style=filled, fillcolor="#ffe7c2"',
    NodeKind.VOCABULARY: 'shape=diamond, style=filled, fillcolor="#e4ffd9"',
    NodeKind.SYMBOL: 'shape=hexagon, style=filled, fillcolor="#ffd9ec"',
}

_EDGE_COLOURS = {
    "NEXT_TOKEN": "#888888",
    "CHILD": "#2b6cb0",
    "NEXT_MAY_USE": "#c05621",
    "NEXT_LEXICAL_USE": "#b7791f",
    "ASSIGNED_FROM": "#276749",
    "RETURNS_TO": "#702459",
    "OCCURRENCE_OF": "#553c9a",
    "SUBTOKEN_OF": "#319795",
}

GraphLike = Union[CodeGraph, FlatGraph]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _as_code_graph(graph: GraphLike) -> CodeGraph:
    if isinstance(graph, FlatGraph):
        return CodeGraph.from_flat(graph)
    return graph


def to_dot(graph: GraphLike, max_label_length: int = 24) -> str:
    """Render a :class:`CodeGraph` or :class:`FlatGraph` as Graphviz DOT.

    Figure 3 of the paper shows a small example graph; this export makes it
    easy to regenerate similar figures from any snippet.  The output is
    deterministic for a given graph regardless of representation: nodes in
    index order, edges grouped by :class:`EdgeKind` declaration order with
    each kind's pairs in insertion order.
    """
    graph = _as_code_graph(graph)
    lines = ["digraph code_graph {", "  rankdir=LR;", "  node [fontsize=10];"]
    for node in graph.nodes:
        label = node.text if len(node.text) <= max_label_length else node.text[: max_label_length - 1] + "…"
        style = _NODE_STYLE[node.kind]
        lines.append(f'  n{node.index} [label="{_escape(label)}", {style}];')
    for kind in ALL_EDGE_KINDS:
        colour = _EDGE_COLOURS.get(kind.value, "#000000")
        for source, target in graph.edges_of(kind):
            lines.append(
                f'  n{source} -> n{target} [label="{kind.value}", color="{colour}", fontsize=8];'
            )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: GraphLike, path: str) -> str:
    """Write :func:`to_dot` output to ``path`` and return the path."""
    dot = to_dot(graph)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot)
    return path
