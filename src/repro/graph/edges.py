"""Edge labels of the program graph (Table 1 of the paper)."""

from __future__ import annotations

from enum import Enum


class EdgeKind(str, Enum):
    """The eight edge labels used in the Typilus graph representation."""

    #: connects two consecutive token nodes
    NEXT_TOKEN = "NEXT_TOKEN"
    #: connects syntax nodes to their children nodes and tokens
    CHILD = "CHILD"
    #: connects a variable-bound token to all potential next uses of the variable
    NEXT_MAY_USE = "NEXT_MAY_USE"
    #: connects a variable-bound token to its next lexical use
    NEXT_LEXICAL_USE = "NEXT_LEXICAL_USE"
    #: connects the right hand side of an assignment to its left hand side
    ASSIGNED_FROM = "ASSIGNED_FROM"
    #: connects return / yield statements to the enclosing function declaration
    RETURNS_TO = "RETURNS_TO"
    #: connects token and syntax nodes bound to a symbol to the symbol node
    OCCURRENCE_OF = "OCCURRENCE_OF"
    #: connects identifier tokens to the vocabulary nodes of their subtokens
    SUBTOKEN_OF = "SUBTOKEN_OF"


#: Groups used by the ablation study (Table 4).
SYNTACTIC_EDGES = frozenset({EdgeKind.NEXT_TOKEN, EdgeKind.CHILD})
DATAFLOW_USE_EDGES = frozenset({EdgeKind.NEXT_MAY_USE, EdgeKind.NEXT_LEXICAL_USE})
ALL_EDGE_KINDS = tuple(EdgeKind)


def edge_vocabulary() -> dict[EdgeKind, int]:
    """Stable integer ids for edge kinds (used by the GNN's per-edge weights)."""
    return {kind: i for i, kind in enumerate(ALL_EDGE_KINDS)}
