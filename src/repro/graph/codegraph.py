"""The program-graph container produced by :mod:`repro.graph.builder`."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.graph.edges import EdgeKind
from repro.graph.nodes import GraphNode, NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import split_identifier


@dataclass
class CodeGraph:
    """A program graph for a single Python file.

    The graph stores the four node categories of Sec. 5.1, the labelled edge
    lists of Table 1, and one :class:`SymbolInfo` per symbol node carrying
    the (erased) ground-truth annotation used for supervision and evaluation.
    """

    filename: str = "<unknown>"
    source: str = ""
    nodes: list[GraphNode] = field(default_factory=list)
    edges: dict[EdgeKind, list[tuple[int, int]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    symbols: list[SymbolInfo] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    def add_node(self, kind: NodeKind, text: str, lineno: int = -1, col: int = -1) -> int:
        node = GraphNode(index=len(self.nodes), kind=kind, text=text, lineno=lineno, col=col)
        self.nodes.append(node)
        return node.index

    def add_edge(self, kind: EdgeKind, source: int, target: int) -> None:
        if source == target:
            return
        if not (0 <= source < len(self.nodes) and 0 <= target < len(self.nodes)):
            raise IndexError(
                f"edge {kind.value} references missing node ({source}, {target}); "
                f"graph has {len(self.nodes)} nodes"
            )
        self.edges[kind].append((source, target))

    def add_symbol(
        self,
        name: str,
        kind: SymbolKind,
        scope: str,
        annotation: Optional[str] = None,
        lineno: int = -1,
    ) -> SymbolInfo:
        node_index = self.add_node(NodeKind.SYMBOL, name, lineno=lineno)
        info = SymbolInfo(
            node_index=node_index,
            name=name,
            kind=kind,
            scope=scope,
            annotation=annotation,
            lineno=lineno,
        )
        self.symbols.append(info)
        return info

    # -- queries ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(pairs) for pairs in self.edges.values())

    def edges_of(self, kind: EdgeKind) -> list[tuple[int, int]]:
        return list(self.edges.get(kind, ()))

    def nodes_of_kind(self, kind: NodeKind) -> list[GraphNode]:
        return [node for node in self.nodes if node.kind == kind]

    def symbol_nodes(self) -> list[GraphNode]:
        return self.nodes_of_kind(NodeKind.SYMBOL)

    def annotated_symbols(self) -> list[SymbolInfo]:
        return [symbol for symbol in self.symbols if symbol.is_annotated]

    def symbol_by_node(self, node_index: int) -> Optional[SymbolInfo]:
        for symbol in self.symbols:
            if symbol.node_index == node_index:
                return symbol
        return None

    def find_symbol(self, name: str, scope: Optional[str] = None, kind: Optional[SymbolKind] = None) -> Optional[SymbolInfo]:
        for symbol in self.symbols:
            if symbol.name != name:
                continue
            if scope is not None and symbol.scope != scope:
                continue
            if kind is not None and symbol.kind != kind:
                continue
            return symbol
        return None

    def node_subtokens(self) -> Iterator[tuple[int, list[str]]]:
        """Yield ``(node_index, subtokens)`` for initialising node states (Eq. 7)."""
        for node in self.nodes:
            yield node.index, split_identifier(node.text)

    def without_edges(self, excluded: Iterable[EdgeKind]) -> "CodeGraph":
        """Return a copy of the graph with the given edge kinds removed.

        Used by the ablation experiments of Table 4; nodes and symbols are
        shared (they are not mutated by the models).
        """
        excluded_set = set(excluded)
        clone = CodeGraph(filename=self.filename, source=self.source)
        clone.nodes = self.nodes
        clone.symbols = self.symbols
        clone.edges = defaultdict(
            list,
            {kind: list(pairs) for kind, pairs in self.edges.items() if kind not in excluded_set},
        )
        return clone

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violation."""
        for kind, pairs in self.edges.items():
            for source, target in pairs:
                if not (0 <= source < len(self.nodes)) or not (0 <= target < len(self.nodes)):
                    raise ValueError(f"dangling edge {kind.value}: ({source}, {target})")
        node_indices = {node.index for node in self.nodes}
        if node_indices != set(range(len(self.nodes))):
            raise ValueError("node indices are not contiguous")
        for symbol in self.symbols:
            if self.nodes[symbol.node_index].kind != NodeKind.SYMBOL:
                raise ValueError(f"symbol {symbol.qualified_name} does not point at a symbol node")

    def summary(self) -> dict[str, int]:
        """Small statistics dictionary used by corpus reporting."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "tokens": len(self.nodes_of_kind(NodeKind.TOKEN)),
            "non_terminals": len(self.nodes_of_kind(NodeKind.NON_TERMINAL)),
            "vocabulary": len(self.nodes_of_kind(NodeKind.VOCABULARY)),
            "symbols": len(self.symbols),
            "annotated_symbols": len(self.annotated_symbols()),
        }
