"""The program-graph container produced by :mod:`repro.graph.builder`.

Since the columnar refactor, :class:`CodeGraph` is a thin *view* over a
:class:`~repro.graph.flatgraph.FlatGraph` arena: hot paths (featurization,
batch assembly, persistence) read the flat arrays through :attr:`flat`.
Symbols are always object-backed (few, and callers hold live references);
``nodes`` / ``edges`` materialise lazily on first access, and that access
*drops* the flat backing — once the mutable containers are visible they are
the single source of truth, so in-place edits can never silently diverge
from stale arrays.  Graphs built by hand through ``add_node``/``add_edge``
(tests, ad-hoc tooling) behave exactly as before — they simply carry no
flat backing until :meth:`to_flat` is called.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.graph.edges import EdgeKind
from repro.graph.flatgraph import FlatGraph, flatten_graph
from repro.graph.nodes import GraphNode, NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import split_identifier


class CodeGraph:
    """A program graph for a single Python file.

    The graph stores the four node categories of Sec. 5.1, the labelled edge
    lists of Table 1, and one :class:`SymbolInfo` per symbol node carrying
    the (erased) ground-truth annotation used for supervision and evaluation.
    """

    def __init__(
        self,
        filename: str = "<unknown>",
        source: str = "",
        nodes: Optional[list[GraphNode]] = None,
        edges: Optional[dict[EdgeKind, list[tuple[int, int]]]] = None,
        symbols: Optional[list[SymbolInfo]] = None,
    ) -> None:
        self.filename = filename
        self.source = source
        self._flat: Optional[FlatGraph] = None
        self._nodes: Optional[list[GraphNode]] = nodes if nodes is not None else []
        self._edges: Optional[dict[EdgeKind, list[tuple[int, int]]]] = (
            dict(edges) if edges is not None else {}
        )
        self._symbols: Optional[list[SymbolInfo]] = symbols if symbols is not None else []

    # -- flat backing -----------------------------------------------------------

    @classmethod
    def from_flat(cls, flat: FlatGraph, filename: Optional[str] = None) -> "CodeGraph":
        """Wrap a columnar graph; nodes and edges stay as arrays until asked for.

        Symbols are materialised eagerly: they are few (one object per
        symbol, versus hundreds of nodes), callers hold live references to
        them (the ingest worker, the pipeline's suggestion paths), and
        keeping them object-backed means any mutation is naturally picked
        up by :meth:`to_flat`, which rebuilds the symbol columns from the
        objects.
        """
        if filename is not None:
            flat = flat.with_filename(filename)
        graph = cls.__new__(cls)
        graph.filename = flat.filename
        graph.source = flat.source
        graph._flat = flat
        graph._nodes = None
        graph._edges = None
        graph._symbols = flat.materialise_symbols()
        return graph

    @property
    def flat(self) -> Optional[FlatGraph]:
        """The columnar backing, or ``None`` for object-built/mutated graphs.

        The backing is dropped the moment object nodes or edges are exposed
        (through the properties or a mutation), so a stale-array state is
        unreachable: either consumers read the arrays, or they hold the
        (mutable) objects and the arrays are gone.
        """
        return self._flat

    def to_flat(self) -> FlatGraph:
        """This graph as a :class:`FlatGraph`.

        With an intact backing only the symbol columns are rebuilt (from
        the live :class:`SymbolInfo` objects — see :meth:`from_flat`); the
        node and edge arrays are reused as-is.  Object-backed graphs are
        flattened wholesale.
        """
        if self._flat is not None:
            from repro.graph.flatgraph import rebuild_symbol_columns

            flat = rebuild_symbol_columns(self._flat, self._symbols)
            if flat.filename != self.filename or flat.source != self.source:
                from dataclasses import replace

                flat = replace(flat, filename=self.filename, source=self.source)
            return flat
        return flatten_graph(self.filename, self.source, self.nodes, self.edges, self.symbols)

    def _materialise(self) -> None:
        """Reconstruct object nodes/edges and drop the flat backing.

        Once the mutable object containers are visible to callers the
        arrays can silently go stale, so they are discarded rather than
        kept alongside.
        """
        flat = self._flat
        if flat is None:
            return
        strings = flat.strings
        kinds = flat.node_kind.tolist()
        texts = flat.node_text.tolist()
        lines = flat.node_line.tolist()
        cols = flat.node_col.tolist()
        from repro.graph.flatgraph import NODE_KIND_ORDER

        self._nodes = [
            GraphNode(index=i, kind=NODE_KIND_ORDER[kinds[i]], text=strings[texts[i]],
                      lineno=lines[i], col=cols[i])
            for i in range(len(kinds))
        ]
        self._edges = {
            kind: [tuple(pair) for pair in pairs.T.tolist()]
            for kind, pairs in flat.edges.items()
        }
        self._flat = None

    # -- materialised views ------------------------------------------------------

    @property
    def nodes(self) -> list[GraphNode]:
        if self._nodes is None:
            self._materialise()
        return self._nodes

    @nodes.setter
    def nodes(self, value: list[GraphNode]) -> None:
        self._materialise()
        self._nodes = value

    @property
    def edges(self) -> dict[EdgeKind, list[tuple[int, int]]]:
        if self._edges is None:
            self._materialise()
        return self._edges

    @edges.setter
    def edges(self, value: dict[EdgeKind, list[tuple[int, int]]]) -> None:
        self._materialise()
        self._edges = dict(value)

    @property
    def symbols(self) -> list[SymbolInfo]:
        return self._symbols

    @symbols.setter
    def symbols(self, value: list[SymbolInfo]) -> None:
        self._symbols = value

    # -- equality / repr -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodeGraph):
            return NotImplemented
        if (
            self.filename != other.filename
            or self.source != other.source
            or self.symbols != other.symbols
        ):
            return False
        mine, theirs = self._flat, other._flat
        if mine is not None and theirs is not None:
            # Compare through the arrays so equality checks never drop the
            # columnar backing.  Text ids are table-local, so texts (not
            # ids) are compared; kind codes are canonical.
            import numpy as np

            if mine is theirs:
                return True
            return (
                np.array_equal(mine.node_kind, theirs.node_kind)
                and np.array_equal(mine.node_line, theirs.node_line)
                and np.array_equal(mine.node_col, theirs.node_col)
                and mine.node_texts() == theirs.node_texts()
                and set(mine.edges) == set(theirs.edges)
                and all(
                    np.array_equal(pairs, theirs.edges[kind])
                    for kind, pairs in mine.edges.items()
                )
            )
        return self.nodes == other.nodes and dict(self.edges) == dict(other.edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CodeGraph(filename={self.filename!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, symbols={len(self.symbols)})"
        )

    # -- construction ---------------------------------------------------------

    def add_node(self, kind: NodeKind, text: str, lineno: int = -1, col: int = -1) -> int:
        self._materialise()
        node = GraphNode(index=len(self._nodes), kind=kind, text=text, lineno=lineno, col=col)
        self._nodes.append(node)
        return node.index

    def add_edge(self, kind: EdgeKind, source: int, target: int) -> None:
        self._materialise()
        if source == target:
            return
        if not (0 <= source < len(self._nodes) and 0 <= target < len(self._nodes)):
            raise IndexError(
                f"edge {kind.value} references missing node ({source}, {target}); "
                f"graph has {len(self._nodes)} nodes"
            )
        self._edges.setdefault(kind, []).append((source, target))

    def add_symbol(
        self,
        name: str,
        kind: SymbolKind,
        scope: str,
        annotation: Optional[str] = None,
        lineno: int = -1,
    ) -> SymbolInfo:
        node_index = self.add_node(NodeKind.SYMBOL, name, lineno=lineno)
        info = SymbolInfo(
            node_index=node_index,
            name=name,
            kind=kind,
            scope=scope,
            annotation=annotation,
            lineno=lineno,
        )
        self._symbols.append(info)
        return info

    # -- queries ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        if self._flat is not None:
            return self._flat.num_nodes
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        if self._flat is not None:
            return self._flat.num_edges
        return sum(len(pairs) for pairs in self._edges.values())

    def edges_of(self, kind: EdgeKind):
        """The pair list of one edge kind.

        Reading never mutates the graph: a kind with no edges yields an
        empty tuple without inserting anything (the historical defaultdict
        storage grew a spurious empty list per queried kind, polluting
        serialization payloads and equality checks).
        """
        if self._flat is not None:
            pairs = self._flat.edges.get(kind)
            if pairs is None:
                return ()
            return [tuple(pair) for pair in pairs.T.tolist()]
        pairs = self._edges.get(kind)
        return list(pairs) if pairs else ()

    def node_texts(self) -> list[str]:
        """Every node's text, without materialising node objects."""
        if self._flat is not None:
            return self._flat.node_texts()
        return [node.text for node in self.nodes]

    def nodes_of_kind(self, kind: NodeKind) -> list[GraphNode]:
        return [node for node in self.nodes if node.kind == kind]

    def count_of_kind(self, kind: NodeKind) -> int:
        """Number of nodes of one kind (array count when flat-backed)."""
        if self._flat is not None:
            return self._flat.count_of_kind(kind)
        return len(self.nodes_of_kind(kind))

    def symbol_nodes(self) -> list[GraphNode]:
        return self.nodes_of_kind(NodeKind.SYMBOL)

    def annotated_symbols(self) -> list[SymbolInfo]:
        return [symbol for symbol in self.symbols if symbol.is_annotated]

    def symbol_by_node(self, node_index: int) -> Optional[SymbolInfo]:
        for symbol in self.symbols:
            if symbol.node_index == node_index:
                return symbol
        return None

    def find_symbol(self, name: str, scope: Optional[str] = None, kind: Optional[SymbolKind] = None) -> Optional[SymbolInfo]:
        for symbol in self.symbols:
            if symbol.name != name:
                continue
            if scope is not None and symbol.scope != scope:
                continue
            if kind is not None and symbol.kind != kind:
                continue
            return symbol
        return None

    def node_subtokens(self) -> Iterator[tuple[int, list[str]]]:
        """Yield ``(node_index, subtokens)`` for initialising node states (Eq. 7)."""
        if self._flat is not None:
            yield from self._flat.node_subtokens()
            return
        for node in self.nodes:
            yield node.index, split_identifier(node.text)

    def without_edges(self, excluded: Iterable[EdgeKind]) -> "CodeGraph":
        """Return a copy of the graph with the given edge kinds removed.

        Used by the ablation experiments of Table 4; nodes and symbols are
        shared (they are not mutated by the models).
        """
        excluded_set = set(excluded)
        if self._flat is not None:
            return CodeGraph.from_flat(self._flat.without_edges(excluded_set))
        clone = CodeGraph(filename=self.filename, source=self.source)
        clone._nodes = self.nodes
        clone._symbols = self.symbols
        clone._edges = {
            kind: list(pairs) for kind, pairs in self.edges.items() if kind not in excluded_set
        }
        return clone

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violation."""
        if self._flat is not None:
            self._flat.validate()
            return
        for kind, pairs in self.edges.items():
            for source, target in pairs:
                if not (0 <= source < len(self.nodes)) or not (0 <= target < len(self.nodes)):
                    raise ValueError(f"dangling edge {kind.value}: ({source}, {target})")
        node_indices = {node.index for node in self.nodes}
        if node_indices != set(range(len(self.nodes))):
            raise ValueError("node indices are not contiguous")
        for symbol in self.symbols:
            if self.nodes[symbol.node_index].kind != NodeKind.SYMBOL:
                raise ValueError(f"symbol {symbol.qualified_name} does not point at a symbol node")

    def summary(self) -> dict[str, int]:
        """Small statistics dictionary used by corpus reporting."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "tokens": self.count_of_kind(NodeKind.TOKEN),
            "non_terminals": self.count_of_kind(NodeKind.NON_TERMINAL),
            "vocabulary": self.count_of_kind(NodeKind.VOCABULARY),
            "symbols": len(self.symbols),
            "annotated_symbols": len(self.annotated_symbols()),
        }
