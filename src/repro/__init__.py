"""repro — a reproduction of "Typilus: Neural Type Hints" (PLDI 2020).

The package is organised as one subpackage per subsystem (see DESIGN.md):

* :mod:`repro.nn` — NumPy autograd engine and neural layers;
* :mod:`repro.graph` — Python source → program graph extraction;
* :mod:`repro.types` — type expressions, lattice and registry;
* :mod:`repro.checker` — optional type checker (mypy-like / pytype-like);
* :mod:`repro.corpus` — synthetic corpus, deduplication, dataset assembly;
* :mod:`repro.models` — GGNN, sequence and path symbol encoders;
* :mod:`repro.core` — losses, TypeSpace, batched kNN prediction, training
  pipeline with save/load persistence;
* :mod:`repro.engine` — project-scale batched annotation engine;
* :mod:`repro.serve` — long-lived annotation daemon with request
  micro-batching and serving-time type-map adaptation;
* :mod:`repro.evaluation` — experiment runners for every table and figure.

Quickstart::

    from repro.corpus import TypeAnnotationDataset, SynthesisConfig
    from repro.core import TypilusPipeline, LossKind

    dataset = TypeAnnotationDataset.synthetic(SynthesisConfig(num_files=60))
    pipeline = TypilusPipeline.fit(dataset, loss_kind=LossKind.TYPILUS)
    summary, _ = pipeline.evaluate_split(dataset.test)
    print(summary.as_row())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
