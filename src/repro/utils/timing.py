"""Timing helpers used by the speed-comparison experiment (Sec. 6.1)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across named sections.

    The speed experiment reports per-epoch training and inference times for
    the GNN and biRNN models; a stopwatch per model keeps those numbers
    comparable without scattering ``time.perf_counter`` calls around.
    """

    sections: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.sections[name] = self.sections.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.sections.get(name, 0.0)

    def mean(self, name: str) -> float:
        count = self.counts.get(name, 0)
        if count == 0:
            return 0.0
        return self.sections[name] / count

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: {"total": self.sections[name], "mean": self.mean(name)}
            for name in self.sections
        }


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
