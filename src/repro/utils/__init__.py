"""Small shared utilities used across the reproduction.

The utilities live in their own package so that substrate packages
(``repro.nn``, ``repro.graph`` etc.) do not depend on each other for
incidental helpers such as seeded random number generation or timing.
"""

from repro.utils.rng import SeededRNG, temp_seed
from repro.utils.text import (
    camel_and_snake_split,
    normalise_whitespace,
    truncate,
)
from repro.utils.timing import Stopwatch, timed

__all__ = [
    "SeededRNG",
    "temp_seed",
    "Stopwatch",
    "timed",
    "camel_and_snake_split",
    "normalise_whitespace",
    "truncate",
]
