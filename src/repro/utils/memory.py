"""Process memory introspection used for training telemetry."""

from __future__ import annotations

import sys
from typing import Optional

try:  # POSIX only; Windows and exotic builds fall back to None.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> Optional[int]:
    """The process's peak resident set size in bytes, if the OS exposes it.

    ``ru_maxrss`` is a lifetime high-water mark: it only ever grows, so
    comparing values *across* phases of one process tells you which phase
    raised the peak, not how much each phase used.  Linux reports kibibytes,
    macOS reports bytes; both are normalised to bytes here.  Returns ``None``
    where ``getrusage`` is unavailable or reports nothing.
    """
    if resource is None:
        return None
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ValueError, OSError):  # pragma: no cover - defensive
        return None
    if peak <= 0:
        return None
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024
