"""Process memory introspection used for training and serving telemetry."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional

try:  # POSIX only; Windows and exotic builds fall back to None.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> Optional[int]:
    """The process's peak resident set size in bytes, if the OS exposes it.

    ``ru_maxrss`` is a lifetime high-water mark: it only ever grows, so
    comparing values *across* phases of one process tells you which phase
    raised the peak, not how much each phase used.  Linux reports kibibytes,
    macOS reports bytes; both are normalised to bytes here.  Returns ``None``
    where ``getrusage`` is unavailable or reports nothing.
    """
    if resource is None:
        return None
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ValueError, OSError):  # pragma: no cover - defensive
        return None
    if peak <= 0:
        return None
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def private_rss_bytes() -> Optional[int]:
    """Resident memory private to this process, in bytes (Linux only).

    Plain RSS charges resident *shared* pages to every process mapping them:
    N workers that memory-map one marker matrix each show the whole matrix in
    their RSS even though it occupies physical memory once.  This reads
    ``Private_Clean + Private_Dirty`` from ``/proc/self/smaps_rollup``, which
    excludes shared file-backed pages — the number that must stay flat as the
    mapped matrix grows, and the one the serving benchmarks assert on.
    Returns ``None`` where smaps accounting is unavailable.
    """
    try:
        text = Path("/proc/self/smaps_rollup").read_text(encoding="ascii")
    except OSError:
        return None
    total = 0
    seen = False
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total += int(line.split()[1]) * 1024  # smaps reports kB
            seen = True
    return total if seen else None
