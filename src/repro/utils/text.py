"""Text helpers shared by the graph builder and corpus synthesiser."""

from __future__ import annotations

import re

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM = re.compile(r"[^A-Za-z0-9]+")


def camel_and_snake_split(identifier: str) -> list[str]:
    """Split an identifier into lower-cased subtokens.

    The splitting rule follows the paper (Sec. 4.3 / Eq. 7): identifiers are
    split on ``camelCase`` boundaries and on underscores, and each resulting
    word-like element becomes a subtoken.  Digits stay attached to the word
    they follow (``conv2d`` → ``["conv2d"]``) which matches how developers
    read such names.

    >>> camel_and_snake_split("numNodes")
    ['num', 'nodes']
    >>> camel_and_snake_split("get_node_count")
    ['get', 'node', 'count']
    """
    if not identifier:
        return []
    pieces: list[str] = []
    for chunk in _NON_ALNUM.split(identifier):
        if not chunk:
            continue
        for part in _CAMEL_BOUNDARY.split(chunk):
            if part:
                pieces.append(part.lower())
    return pieces


def normalise_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return re.sub(r"\s+", " ", text).strip()


def truncate(text: str, limit: int = 60) -> str:
    """Shorten ``text`` to at most ``limit`` characters with an ellipsis."""
    if len(text) <= limit:
        return text
    if limit <= 1:
        return text[:limit]
    return text[: limit - 1] + "…"
