"""Deterministic random number helpers.

Every stochastic component in the reproduction (corpus synthesis, parameter
initialisation, mini-batch shuffling, negative sampling) accepts either a
seed or a :class:`SeededRNG` so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import contextlib
import random
from typing import Iterator, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class SeededRNG:
    """A small façade over ``numpy.random.Generator`` and ``random.Random``.

    Both generators are seeded from the same integer so code that needs
    Python-level choice functions (e.g. corpus synthesis picking identifier
    names) and code that needs ndarray sampling (e.g. weight initialisation)
    share a single reproducible stream of entropy.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.np = np.random.default_rng(self.seed)
        self.py = random.Random(self.seed)

    def fork(self, offset: int = 1) -> "SeededRNG":
        """Return a new independent RNG derived from this one.

        Forking is preferred over sharing a single RNG between components
        because it keeps each component's stream stable even when another
        component changes how many samples it draws.
        """
        return SeededRNG(self.seed * 1_000_003 + offset)

    # -- convenience wrappers -------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Return a random integer in the inclusive range ``[low, high]``."""
        return self.py.randint(low, high)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self.py.uniform(low, high)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self.py.choice(list(items))

    def choices(self, items: Sequence[T], weights: Sequence[float], k: int) -> list[T]:
        return self.py.choices(list(items), weights=list(weights), k=k)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self.py.sample(list(items), k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a shuffled *copy* of ``items`` (the input is not mutated)."""
        copied = list(items)
        self.py.shuffle(copied)
        return copied

    def normal(self, shape: tuple[int, ...], scale: float = 1.0) -> np.ndarray:
        return self.np.normal(0.0, scale, size=shape)

    def permutation(self, n: int) -> np.ndarray:
        return self.np.permutation(n)


@contextlib.contextmanager
def temp_seed(seed: int) -> Iterator[None]:
    """Temporarily seed the *global* ``numpy`` and ``random`` states.

    Only used in tests that exercise code relying on global randomness; the
    library itself always threads explicit :class:`SeededRNG` objects.
    """
    np_state = np.random.get_state()
    py_state = random.getstate()
    np.random.seed(seed)
    random.seed(seed)
    try:
        yield
    finally:
        np.random.set_state(np_state)
        random.setstate(py_state)
